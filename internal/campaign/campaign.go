// Package campaign orchestrates the measurement study: it executes
// stationary runs across the 11 test areas exactly the way §4.1
// describes — multiple locations per area, repeated 5-minute bulk
// download runs per location — and keeps per-run records (CS timeline,
// loop analysis, throughput series) that the experiment generators
// aggregate into the paper's tables and figures.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime/debug"
	"time"

	"github.com/mssn/loopscope/internal/core"
	"github.com/mssn/loopscope/internal/deploy"
	"github.com/mssn/loopscope/internal/device"
	"github.com/mssn/loopscope/internal/faults"
	"github.com/mssn/loopscope/internal/obs"
	"github.com/mssn/loopscope/internal/policy"
	"github.com/mssn/loopscope/internal/rrc"
	"github.com/mssn/loopscope/internal/sig"
	"github.com/mssn/loopscope/internal/throughput"
	"github.com/mssn/loopscope/internal/trace"
	"github.com/mssn/loopscope/internal/uesim"
)

// MinRunScale is the smallest accepted run scale. Invalid values
// (negative or NaN) are coerced to it rather than silently misbehaving;
// at this scale every location executes exactly one run.
const MinRunScale = 1.0 / (1 << 20)

// DefaultMaxRetries bounds how often a failed (panicked) run is
// re-attempted with a perturbed seed before its failure record sticks.
const DefaultMaxRetries = 1

// Options scales the study. The zero value gives the full default
// study; tests use reduced RunScale and Duration.
type Options struct {
	// Seed is the study's master seed; everything derives from it.
	Seed int64
	// Duration of each stationary run (default 5 minutes, §4.1).
	Duration time.Duration
	// RunScale multiplies the per-area run counts (default 1.0;
	// negative or NaN values are coerced to MinRunScale).
	RunScale float64
	// Device is the test phone (default OnePlus 12R).
	Device *device.Profile
	// KeepSpeeds records the per-second throughput series (needed for
	// Fig. 1b/11; off by default to keep memory flat).
	KeepSpeeds bool
	// FaultRates, when non-nil, routes every run's capture through a
	// seeded faults.Injector and the salvage pipeline: the emitted log
	// is corrupted, re-parsed with sig.ParseLenient and analyzed from
	// whatever survived, mirroring how real damaged captures are
	// ingested. Each record carries its Salvage report.
	FaultRates *faults.Rates
	// MaxRetries bounds the retries of a failed run (default
	// DefaultMaxRetries; negative disables retries).
	MaxRetries int
	// Workers bounds the RunArea worker pool; 0 means one worker per
	// CPU. Record order and content are identical at any worker count.
	Workers int
	// RunTimeout, when positive, bounds each run attempt's wall-clock
	// time: an attempt that exceeds it aborts between events and
	// produces a FailDeadline record (final — deadlines are not
	// retried). Whether a given run hits the deadline depends on the
	// machine, so studies that must stay byte-deterministic leave it
	// zero.
	RunTimeout time.Duration
	// RetryBackoff, when positive, is the base delay slept before each
	// panic retry, doubling per attempt (backoff, 2·backoff, ...). The
	// sleep is context-aware: cancellation interrupts it.
	RetryBackoff time.Duration
	// Checkpoint, when non-empty, is the path of the durable run
	// journal (see internal/checkpoint and docs/RESILIENCE.md): every
	// completed run appends one checksummed entry keyed by its
	// deterministic identity, and a later RunContext with Resume set
	// replays the journal to skip finished runs.
	Checkpoint string
	// Resume permits RunContext to replay an existing non-empty
	// journal at Checkpoint. Without it a pre-populated journal is an
	// error, so two studies cannot silently interleave into one file.
	Resume bool
	// Sink, when non-nil, additionally receives every completed record
	// in deterministic order as the study executes (see Sink).
	Sink Sink
	// CrashAfter, when positive, kills the engine deterministically
	// right after the N-th checkpoint append: the journal keeps
	// exactly N entries, in-flight runs are cancelled, and RunContext
	// returns ErrInjectedCrash. This is the crashtest harness's fault
	// point; production runs leave it zero.
	CrashAfter int
	// Metrics, when non-nil, receives stage spans and run counters
	// (runs, retries, panics, salvaged runs — in total and per
	// operator/area). Pure observation: records, goldens and experiment
	// output are byte-identical with or without a collector; the
	// parity test enforces this.
	Metrics obs.Collector
}

// withDefaults fills in the zero values.
func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 5 * time.Minute
	}
	if o.RunScale < 0 || math.IsNaN(o.RunScale) {
		o.RunScale = MinRunScale
	}
	//lint:ignore loopvet/floatcmp zero is the Options not-set sentinel, assigned verbatim and never computed
	if o.RunScale == 0 {
		o.RunScale = 1
	}
	if o.Device == nil {
		o.Device = device.OnePlus12R()
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	return o
}

// Record is one stationary run's outcome.
type Record struct {
	Op       string
	Area     string
	City     string
	LocIndex int
	RunIndex int
	Device   string
	Arch     deploy.Archetype

	Timeline  *trace.Timeline
	Analysis  core.Analysis
	Speeds    []throughput.Sample
	MeasCount int // individual RSRP/RSRQ values reported (Table 3)

	// Salvage reports what lenient parsing recovered when the run's
	// capture went through fault injection (nil otherwise).
	Salvage *sig.Salvage
	// Err and Stack describe a run that failed instead of completing;
	// such a failure record keeps the study alive and countable. Stack
	// is only set for panics.
	Err   string
	Stack string
	// FailKind classifies the failure carried by Err (panic, deadline
	// or cancellation); FailNone for successful runs.
	FailKind FailureKind
	// Attempts is how many executions this record took (1 for a clean
	// first run; retries increment it).
	Attempts int
}

// FailureKind is the closed taxonomy of run failures. Only panics are
// retried; a deadline is a final outcome (the run is deterministic, so
// retrying would burn the same wall-clock again), and a cancelled run
// belongs to a study that is shutting down.
type FailureKind uint8

const (
	// FailNone marks a successful run.
	FailNone FailureKind = iota
	// FailPanic marks a run that panicked; Stack holds the trace.
	FailPanic
	// FailDeadline marks a run that exceeded Options.RunTimeout while
	// the study itself was still live; a deadline inherited from the
	// study context is classified FailCancelled instead.
	FailDeadline
	// FailCancelled marks a run aborted by study cancellation; such
	// records are never checkpointed or delivered to sinks, so a
	// resumed study re-executes them.
	FailCancelled
)

// String names the failure kind for counters and reports.
func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "none"
	case FailPanic:
		return "panic"
	case FailDeadline:
		return "deadline"
	case FailCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("FailureKind(%d)", uint8(k))
	}
}

// HasLoop reports whether the run contained an ON-OFF loop.
func (r *Record) HasLoop() bool { return r.Analysis.HasLoop() }

// Failed reports whether the run panicked and carries no analysis.
func (r *Record) Failed() bool { return r.Err != "" }

// Form returns the run's sequence form (Fig. 4). A run is persistent
// when it *ends* inside a loop, so the last detected loop's form
// decides: a run that briefly left a loop and re-entered it still ends
// in the loop.
func (r *Record) Form() core.Form {
	if !r.HasLoop() {
		return core.FormNoLoop
	}
	return r.Analysis.Loops[len(r.Analysis.Loops)-1].Form
}

// Subtype returns the primary loop's sub-type (SubtypeUnknown if none).
func (r *Record) Subtype() core.Subtype {
	_, st := r.Analysis.Primary()
	return st
}

// AreaResult bundles one area's deployment and run records.
type AreaResult struct {
	Spec    deploy.AreaSpec
	Dep     *deploy.Deployment
	Records []*Record
}

// LocationRecords groups the area's records by location index.
func (a *AreaResult) LocationRecords() [][]*Record {
	out := make([][]*Record, len(a.Dep.Clusters))
	for _, r := range a.Records {
		out[r.LocIndex] = append(out[r.LocIndex], r)
	}
	return out
}

// LoopLikelihood returns the per-location loop likelihood (Fig. 8).
// Failed runs are excluded from the denominator: a crashed capture is
// missing data, not a no-loop observation.
func (a *AreaResult) LoopLikelihood() []float64 {
	locs := a.LocationRecords()
	out := make([]float64, len(locs))
	for i, recs := range locs {
		n, ok := 0, 0
		for _, r := range recs {
			if r.Failed() {
				continue
			}
			ok++
			if r.HasLoop() {
				n++
			}
		}
		if ok > 0 {
			out[i] = float64(n) / float64(ok)
		}
	}
	return out
}

// Failures counts the area's runs that ended in a failure record.
func (a *AreaResult) Failures() int {
	n := 0
	for _, r := range a.Records {
		if r.Failed() {
			n++
		}
	}
	return n
}

// Study is the full multi-operator dataset.
type Study struct {
	Opts  Options
	Areas []*AreaResult
}

// Run executes the full study over all areas of all three operators.
// It is RunContext under a background context; because that context
// never cancels, an error is only possible from a misconfigured
// checkpoint or sink, and Run panics on it — callers wiring those
// options use RunContext.
func Run(opts Options) *Study {
	st, err := RunContext(context.Background(), opts)
	if err != nil {
		panic(fmt.Sprintf("campaign.Run: %v (use RunContext to handle engine errors)", err))
	}
	return st
}

// RunOperator executes the study for a single operator. See Run for
// the error contract.
func RunOperator(op *policy.Operator, opts Options) *Study {
	st, err := RunOperatorContext(context.Background(), op, opts)
	if err != nil {
		panic(fmt.Sprintf("campaign.RunOperator: %v (use RunOperatorContext to handle engine errors)", err))
	}
	return st
}

// RunArea executes all runs of one area. Runs are independent (each
// derives its own seed), so they execute on a bounded worker pool; the
// record order — and therefore every downstream aggregate — is
// identical to the sequential execution. Checkpointing and sinks are
// study-level concerns and are not consulted here.
func RunArea(op *policy.Operator, spec deploy.AreaSpec, opts Options) *AreaResult {
	opts.Checkpoint, opts.Sink = "", nil
	r := &runner{opts: opts.withDefaults()}
	return r.runArea(context.Background(), op, spec, true)
}

// ExecuteRun performs a single run under a background context; see
// ExecuteRunContext.
func ExecuteRun(op *policy.Operator, dep *deploy.Deployment, cl *deploy.Cluster,
	locIdx, runIdx int, opts Options) *Record {
	return ExecuteRunContext(context.Background(), op, dep, cl, locIdx, runIdx, opts)
}

// ExecuteRunContext performs a single run and post-processes it
// through the full analysis pipeline. A run that panics does not tear
// down the study: the panic is captured into a failure Record (with
// error and stack), and the run is retried — after a context-aware
// backoff — up to Options.MaxRetries times with a perturbed seed
// before the failure sticks. Deadline and cancellation failures are
// final and never retried; cancellation during a retry backoff also
// yields a cancelled record (not the interim panic), because an
// uninterrupted study would have retried and the panic must not be
// checkpointed as final.
func ExecuteRunContext(ctx context.Context, op *policy.Operator, dep *deploy.Deployment,
	cl *deploy.Cluster, locIdx, runIdx int, opts Options) *Record {
	opts = opts.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	rec := runOnce(ctx, op, dep, cl, locIdx, runIdx, 0, opts)
	for attempt := 1; rec.FailKind == FailPanic && attempt <= opts.MaxRetries; attempt++ {
		if !sleepBackoff(ctx, opts.RetryBackoff, attempt) {
			// Cancelled while backing off. The interim panic record must
			// not stand: it would be checkpointed as a final failure,
			// while an uninterrupted study would have retried (possibly
			// succeeding) — resume(k) would diverge from the baseline.
			// Demote it to a cancelled record, which the engine neither
			// checkpoints nor delivers, so the resumed study re-runs it
			// with the full retry budget.
			cause := context.Cause(ctx)
			if cause == nil {
				cause = context.Canceled
			}
			rec.Err = cause.Error()
			rec.Stack = ""
			rec.FailKind = FailCancelled
			break
		}
		retry := runOnce(ctx, op, dep, cl, locIdx, runIdx, attempt, opts)
		retry.Attempts = attempt + 1
		rec = retry
	}
	if c := opts.Metrics; c != nil {
		label := metricLabel(op.Name, dep.Area.ID)
		c.Add("campaign.runs", 1)
		c.Add("campaign.runs"+label, 1)
		if n := int64(rec.Attempts - 1); n > 0 {
			c.Add("campaign.retries", n)
			c.Add("campaign.retries"+label, n)
		}
		if rec.Failed() {
			c.Add("campaign.failures", 1)
			c.Add("campaign.failures"+label, 1)
		}
		switch rec.FailKind {
		case FailNone:
		case FailPanic, FailDeadline, FailCancelled:
			c.Add("campaign.failures."+rec.FailKind.String(), 1)
			c.Add("campaign.failures."+rec.FailKind.String()+label, 1)
		}
		if rec.Salvage != nil && !rec.Salvage.Clean() {
			c.Add("campaign.salvaged_runs", 1)
			c.Add("campaign.salvaged_runs"+label, 1)
		}
	}
	return rec
}

// sleepBackoff waits out the retry backoff for the given attempt
// (base·2^(attempt-1)), returning false if ctx was cancelled first.
//
//loopvet:detsafe retry pacing only: the timer decides when a failed run is retried, never what it produces — record bytes and delivery order stay seed-determined, and the crash-resume byte-identity tests gate that
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) bool {
	if base <= 0 {
		return true
	}
	d := base << (attempt - 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// metricLabel renders the per-operator/area counter suffix, e.g.
// "{op=OPT,area=A1}".
func metricLabel(op, area string) string {
	return "{op=" + op + ",area=" + area + "}"
}

// startStage opens a stage span on c, tolerating a disabled collector.
func startStage(c obs.Collector, s obs.Stage) func() {
	if c == nil {
		return func() {}
	}
	return c.StartStage(s)
}

// testHookPanic, when set by a test, forces a run attempt to panic —
// the only way to exercise the recovery path deterministically.
var testHookPanic func(area string, locIdx, runIdx, attempt int) bool

// runOnce executes one attempt of a run under panic isolation and the
// study context. A context abort (cancellation or per-run deadline)
// surfaces as a typed failure record, not a panic.
func runOnce(ctx context.Context, op *policy.Operator, dep *deploy.Deployment, cl *deploy.Cluster,
	locIdx, runIdx, attempt int, opts Options) (rec *Record) {
	rec = &Record{
		Op:       op.Name,
		Area:     dep.Area.ID,
		City:     dep.Area.City,
		LocIndex: locIdx,
		RunIndex: runIdx,
		Device:   opts.Device.Name,
		Arch:     cl.Arch,
		Attempts: 1,
	}
	defer func() {
		if p := recover(); p != nil {
			rec.Err = fmt.Sprint(p)
			rec.Stack = string(debug.Stack())
			rec.FailKind = FailPanic
			rec.Timeline = nil
			rec.Analysis = core.Analysis{}
			rec.Speeds = nil
			rec.MeasCount = 0
			rec.Salvage = nil
			if c := opts.Metrics; c != nil {
				c.Add("campaign.panics", 1)
				c.Add("campaign.panics"+metricLabel(op.Name, dep.Area.ID), 1)
			}
		}
	}()
	if testHookPanic != nil && testHookPanic(dep.Area.ID, locIdx, runIdx, attempt) {
		panic("injected test failure")
	}
	parent := ctx
	if opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.RunTimeout)
		defer cancel()
	}
	// Retries perturb the seed so a deterministic crash input is not
	// replayed verbatim.
	seed := opts.Seed*1_000_003 + int64(locIdx)*7919 + int64(runIdx)*104729 +
		int64(deployHash(dep.Area.ID)) + int64(attempt)*1_000_000_007
	cfg := uesim.Config{
		Op:       op,
		Field:    dep.Field,
		Cluster:  cl,
		Device:   opts.Device,
		Duration: opts.Duration,
		Seed:     seed,
		Metrics:  opts.Metrics,
	}
	var log *sig.Log
	var tb *trace.Builder
	var sd *core.StreamDetector
	var abort error
	if opts.FaultRates != nil {
		// Stream the run end-to-end: the simulator emits into a pipe,
		// the injector corrupts records in flight, and lenient parsing
		// consumes the other end — the capture text is never
		// materialized. A simulator panic is ferried back and re-raised
		// here so the failure-record machinery above still sees it; a
		// context abort is ferried the same way and the pipe is closed
		// with its error so the parser unblocks.
		// The simulate and parse spans overlap by construction: the
		// emitter blocks on the pipe while the parser drains it, so
		// each span measures its stage's wall-clock window, not
		// exclusive CPU time (see docs/OBSERVABILITY.md).
		inj := faults.New(seed+2, *opts.FaultRates).WithCollector(opts.Metrics)
		pr, pw := io.Pipe()
		panicked := make(chan any, 1)
		aborted := make(chan error, 1)
		go func() {
			defer close(panicked)
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
					pw.CloseWithError(io.ErrUnexpectedEOF) // unblock the parser
				}
			}()
			endSim := startStage(opts.Metrics, obs.StageSimulate)
			em := sig.NewEmitter(pw)
			if err := uesim.RunToContext(ctx, cfg, em); err != nil {
				aborted <- err
				pw.CloseWithError(err)
				return
			}
			endSim()
			pw.CloseWithError(em.Close())
		}()
		// The parser tees every kept event into a trace.Builder as it is
		// parsed, so extraction runs fused with the parse stage and the
		// StageExtract span below only measures Finish (see
		// docs/OBSERVABILITY.md). The builder in turn tees every timeline
		// step into a StreamDetector, so loop detection also runs during
		// the parse pass; the StageDetect span below measures only the
		// flush that finalizes forms. The unbounded horizon keeps the
		// record provably identical to core.Analyze (see core.StreamDetector).
		tb = trace.NewBuilder()
		sd = core.NewStreamDetector(core.StreamConfig{Metrics: opts.Metrics})
		tb.TeeSteps(sd.Push)
		endParse := startStage(opts.Metrics, obs.StageParse)
		salvaged, sal, err := sig.ParseLenientObservedTee(inj.Reader(pr), opts.Metrics, tb)
		endParse()
		if p, ok := <-panicked; ok {
			panic(p)
		}
		select {
		case abort = <-aborted:
		default:
			if err != nil {
				panic(err) // pipe error without a writer panic; recovered above
			}
		}
		log = salvaged
		rec.Salvage = normalizeSalvage(sal)
	} else {
		endSim := startStage(opts.Metrics, obs.StageSimulate)
		collected := &sig.Log{Events: make([]sig.Event, 0, 4096)}
		abort = uesim.RunToContext(ctx, cfg, collected)
		endSim()
		log = collected
	}
	if abort != nil {
		rec.Err = abort.Error()
		rec.FailKind = failKindFor(abort, parent, opts.RunTimeout > 0)
		rec.Timeline = nil
		rec.Analysis = core.Analysis{}
		rec.Speeds = nil
		rec.MeasCount = 0
		rec.Salvage = nil
		return rec
	}
	endExtract := startStage(opts.Metrics, obs.StageExtract)
	var tl *trace.Timeline
	if tb != nil {
		tl = tb.Finish()
	} else {
		tl = trace.FromLog(log)
	}
	endExtract()
	rec.Timeline = tl
	endDetect := startStage(opts.Metrics, obs.StageDetect)
	if sd != nil {
		// Streamed path: detection already ran alongside the parse; the
		// flush finalizes open-loop forms and re-attaches the records to
		// the finished timeline, byte-identical to core.Analyze(tl).
		rec.Analysis = sd.FinishAnalysis(tl)
	} else {
		rec.Analysis = core.Analyze(tl)
	}
	endDetect()
	endAnalyze := startStage(opts.Metrics, obs.StageAnalyze)
	for _, e := range log.Events {
		if mr, ok := e.Msg.(rrc.MeasReport); ok {
			rec.MeasCount += len(mr.Entries)
		}
	}
	if opts.KeepSpeeds {
		rec.Speeds = throughput.Generate(tl, op, seed+1)
	}
	endAnalyze()
	return rec
}

// normalizeSalvage flattens each quarantine cause to a plain
// errors.New of its message. The parser surfaces concrete error types
// (strconv.NumError and friends) that the record codec cannot
// reconstruct; records must be wire-stable from birth so a resumed
// study is deep-equal to an uninterrupted one. The rendered text is
// unchanged — only the dynamic type is.
func normalizeSalvage(sal *sig.Salvage) *sig.Salvage {
	if sal == nil {
		return nil
	}
	for _, pe := range sal.Errors {
		pe.Err = errors.New(pe.Err.Error())
	}
	return sal
}

// failKindFor maps a context abort error to its failure kind. A
// DeadlineExceeded is FailDeadline only when it came from the per-run
// timeout: parent is the study context as runOnce received it (before
// the RunTimeout wrap), and if parent is itself done the whole study
// is shutting down — e.g. RunStudyContext under context.WithTimeout —
// so the run is FailCancelled and a resumed study re-executes it
// instead of replaying a bogus permanent failure.
func failKindFor(err error, parent context.Context, perRunTimeout bool) FailureKind {
	if perRunTimeout && parent.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		return FailDeadline
	}
	return FailCancelled
}

// deployHash distinguishes run seeds across areas.
func deployHash(id string) int {
	h := 0
	for _, c := range id {
		h = h*31 + int(c)
	}
	return h
}

// Records returns all records, optionally filtered by operator name
// ("" for all).
func (s *Study) Records(op string) []*Record {
	var out []*Record
	for _, a := range s.Areas {
		if op != "" && a.Spec.Operator != op {
			continue
		}
		out = append(out, a.Records...)
	}
	return out
}

// AreaByID returns one area's results.
func (s *Study) AreaByID(id string) *AreaResult {
	for _, a := range s.Areas {
		if a.Spec.ID == id {
			return a
		}
	}
	return nil
}

// Failures counts runs across the study that ended in failure records.
func (s *Study) Failures() int {
	n := 0
	for _, a := range s.Areas {
		n += a.Failures()
	}
	return n
}

// FailedRecords returns every failure record for inspection (error and
// stack preserved).
func (s *Study) FailedRecords() []*Record {
	var out []*Record
	for _, r := range s.Records("") {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

// FormCounts tallies sequence forms for an operator (Fig. 6). Failed
// runs carry no sequence and are not counted.
func (s *Study) FormCounts(op string) map[core.Form]int {
	out := map[core.Form]int{}
	for _, r := range s.Records(op) {
		if r.Failed() {
			continue
		}
		out[r.Form()]++
	}
	return out
}

// SubtypeCounts tallies loop sub-types for an operator or area. Failed
// runs never report loops, so they naturally drop out.
func SubtypeCounts(records []*Record) map[core.Subtype]int {
	out := map[core.Subtype]int{}
	for _, r := range records {
		if !r.Failed() && r.HasLoop() {
			out[r.Subtype()]++
		}
	}
	return out
}

// LoopInstances returns every detected loop across records.
func LoopInstances(records []*Record) []*core.Loop {
	var out []*core.Loop
	for _, r := range records {
		out = append(out, r.Analysis.Loops...)
	}
	return out
}

// Package campaign orchestrates the measurement study: it executes
// stationary runs across the 11 test areas exactly the way §4.1
// describes — multiple locations per area, repeated 5-minute bulk
// download runs per location — and keeps per-run records (CS timeline,
// loop analysis, throughput series) that the experiment generators
// aggregate into the paper's tables and figures.
package campaign

import (
	"runtime"
	"sync"
	"time"

	"github.com/mssn/loopscope/internal/core"
	"github.com/mssn/loopscope/internal/deploy"
	"github.com/mssn/loopscope/internal/device"
	"github.com/mssn/loopscope/internal/policy"
	"github.com/mssn/loopscope/internal/rrc"
	"github.com/mssn/loopscope/internal/throughput"
	"github.com/mssn/loopscope/internal/trace"
	"github.com/mssn/loopscope/internal/uesim"
)

// Options scales the study. The zero value gives the full default
// study; tests use reduced RunScale and Duration.
type Options struct {
	// Seed is the study's master seed; everything derives from it.
	Seed int64
	// Duration of each stationary run (default 5 minutes, §4.1).
	Duration time.Duration
	// RunScale multiplies the per-area run counts (default 1.0).
	RunScale float64
	// Device is the test phone (default OnePlus 12R).
	Device *device.Profile
	// KeepSpeeds records the per-second throughput series (needed for
	// Fig. 1b/11; off by default to keep memory flat).
	KeepSpeeds bool
}

// withDefaults fills in the zero values.
func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 5 * time.Minute
	}
	if o.RunScale == 0 {
		o.RunScale = 1
	}
	if o.Device == nil {
		o.Device = device.OnePlus12R()
	}
	return o
}

// Record is one stationary run's outcome.
type Record struct {
	Op       string
	Area     string
	City     string
	LocIndex int
	RunIndex int
	Device   string
	Arch     deploy.Archetype

	Timeline  *trace.Timeline
	Analysis  core.Analysis
	Speeds    []throughput.Sample
	MeasCount int // individual RSRP/RSRQ values reported (Table 3)
}

// HasLoop reports whether the run contained an ON-OFF loop.
func (r *Record) HasLoop() bool { return r.Analysis.HasLoop() }

// Form returns the run's sequence form (Fig. 4). A run is persistent
// when it *ends* inside a loop, so the last detected loop's form
// decides: a run that briefly left a loop and re-entered it still ends
// in the loop.
func (r *Record) Form() core.Form {
	if !r.HasLoop() {
		return core.FormNoLoop
	}
	return r.Analysis.Loops[len(r.Analysis.Loops)-1].Form
}

// Subtype returns the primary loop's sub-type (SubtypeUnknown if none).
func (r *Record) Subtype() core.Subtype {
	_, st := r.Analysis.Primary()
	return st
}

// AreaResult bundles one area's deployment and run records.
type AreaResult struct {
	Spec    deploy.AreaSpec
	Dep     *deploy.Deployment
	Records []*Record
}

// LocationRecords groups the area's records by location index.
func (a *AreaResult) LocationRecords() [][]*Record {
	out := make([][]*Record, len(a.Dep.Clusters))
	for _, r := range a.Records {
		out[r.LocIndex] = append(out[r.LocIndex], r)
	}
	return out
}

// LoopLikelihood returns the per-location loop likelihood (Fig. 8).
func (a *AreaResult) LoopLikelihood() []float64 {
	locs := a.LocationRecords()
	out := make([]float64, len(locs))
	for i, recs := range locs {
		if len(recs) == 0 {
			continue
		}
		n := 0
		for _, r := range recs {
			if r.HasLoop() {
				n++
			}
		}
		out[i] = float64(n) / float64(len(recs))
	}
	return out
}

// Study is the full multi-operator dataset.
type Study struct {
	Opts  Options
	Areas []*AreaResult
}

// Run executes the full study over all areas of all three operators.
func Run(opts Options) *Study {
	opts = opts.withDefaults()
	st := &Study{Opts: opts}
	for _, spec := range deploy.Areas() {
		op := policy.ByName(spec.Operator)
		st.Areas = append(st.Areas, RunArea(op, spec, opts))
	}
	return st
}

// RunOperator executes the study for a single operator.
func RunOperator(op *policy.Operator, opts Options) *Study {
	opts = opts.withDefaults()
	st := &Study{Opts: opts}
	for _, spec := range deploy.AreasFor(op.Name) {
		st.Areas = append(st.Areas, RunArea(op, spec, opts))
	}
	return st
}

// RunArea executes all runs of one area. Runs are independent (each
// derives its own seed), so they execute on a bounded worker pool; the
// record order — and therefore every downstream aggregate — is
// identical to the sequential execution.
func RunArea(op *policy.Operator, spec deploy.AreaSpec, opts Options) *AreaResult {
	opts = opts.withDefaults()
	dep := deploy.Build(op, spec, opts.Seed+1)
	res := &AreaResult{Spec: spec, Dep: dep}
	runs := int(float64(spec.Runs)*opts.RunScale + 0.5)
	if runs < 1 {
		runs = 1
	}
	type job struct{ li, ri, slot int }
	var jobs []job
	for li := range dep.Clusters {
		for ri := 0; ri < runs; ri++ {
			jobs = append(jobs, job{li, ri, len(jobs)})
		}
	}
	res.Records = make([]*Record, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				res.Records[j.slot] = ExecuteRun(op, dep, dep.Clusters[j.li], j.li, j.ri, opts)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return res
}

// ExecuteRun performs a single run and post-processes it through the
// full analysis pipeline.
func ExecuteRun(op *policy.Operator, dep *deploy.Deployment, cl *deploy.Cluster,
	locIdx, runIdx int, opts Options) *Record {
	opts = opts.withDefaults()
	seed := opts.Seed*1_000_003 + int64(locIdx)*7919 + int64(runIdx)*104729 + int64(deployHash(dep.Area.ID))
	result := uesim.Run(uesim.Config{
		Op:       op,
		Field:    dep.Field,
		Cluster:  cl,
		Device:   opts.Device,
		Duration: opts.Duration,
		Seed:     seed,
	})
	tl := trace.Extract(result.Log)
	rec := &Record{
		Op:       op.Name,
		Area:     dep.Area.ID,
		City:     dep.Area.City,
		LocIndex: locIdx,
		RunIndex: runIdx,
		Device:   opts.Device.Name,
		Arch:     cl.Arch,
		Timeline: tl,
		Analysis: core.Analyze(tl),
	}
	for _, e := range result.Log.Events {
		if mr, ok := e.Msg.(rrc.MeasReport); ok {
			rec.MeasCount += len(mr.Entries)
		}
	}
	if opts.KeepSpeeds {
		rec.Speeds = throughput.Generate(tl, op, seed+1)
	}
	return rec
}

// deployHash distinguishes run seeds across areas.
func deployHash(id string) int {
	h := 0
	for _, c := range id {
		h = h*31 + int(c)
	}
	return h
}

// Records returns all records, optionally filtered by operator name
// ("" for all).
func (s *Study) Records(op string) []*Record {
	var out []*Record
	for _, a := range s.Areas {
		if op != "" && a.Spec.Operator != op {
			continue
		}
		out = append(out, a.Records...)
	}
	return out
}

// AreaByID returns one area's results.
func (s *Study) AreaByID(id string) *AreaResult {
	for _, a := range s.Areas {
		if a.Spec.ID == id {
			return a
		}
	}
	return nil
}

// FormCounts tallies sequence forms for an operator (Fig. 6).
func (s *Study) FormCounts(op string) map[core.Form]int {
	out := map[core.Form]int{}
	for _, r := range s.Records(op) {
		out[r.Form()]++
	}
	return out
}

// SubtypeCounts tallies loop sub-types for an operator or area.
func SubtypeCounts(records []*Record) map[core.Subtype]int {
	out := map[core.Subtype]int{}
	for _, r := range records {
		if r.HasLoop() {
			out[r.Subtype()]++
		}
	}
	return out
}

// LoopInstances returns every detected loop across records.
func LoopInstances(records []*Record) []*core.Loop {
	var out []*core.Loop
	for _, r := range records {
		out = append(out, r.Analysis.Loops...)
	}
	return out
}

package meas

import "testing"

func TestMeasurable(t *testing.T) {
	if (Measurement{RSRPDBm: -130}).Measurable() {
		t.Error("-130 dBm should be below the floor")
	}
	if !(Measurement{RSRPDBm: -120}).Measurable() {
		t.Error("-120 dBm should be measurable")
	}
}

func TestEventA2(t *testing.T) {
	e := A2(QuantityRSRP, -110)
	if e.Entered(Measurement{RSRPDBm: -100}, Measurement{}) {
		t.Error("A2 should not fire above threshold")
	}
	if !e.Entered(Measurement{RSRPDBm: -115}, Measurement{}) {
		t.Error("A2 should fire below threshold")
	}
}

func TestEventA3(t *testing.T) {
	e := A3(QuantityRSRP, 6)
	s := Measurement{RSRPDBm: -85}
	if e.Entered(s, Measurement{RSRPDBm: -80}) {
		t.Error("A3 must require the full offset")
	}
	if !e.Entered(s, Measurement{RSRPDBm: -78}) {
		t.Error("A3 should fire when neighbour is 7 dB better")
	}
	// RSRQ variant, as on OPA channel 5815 (Fig. 32).
	eq := A3(QuantityRSRQ, 6)
	if !eq.Entered(Measurement{RSRQDB: -17.5}, Measurement{RSRQDB: -10}) {
		t.Error("A3 RSRQ should fire")
	}
}

func TestEventA3Hysteresis(t *testing.T) {
	e := A3(QuantityRSRP, 6)
	e.Hysteresis = 2
	s := Measurement{RSRPDBm: -85}
	if e.Entered(s, Measurement{RSRPDBm: -78}) {
		t.Error("hysteresis should suppress a marginal A3")
	}
	if !e.Entered(s, Measurement{RSRPDBm: -76}) {
		t.Error("A3 should fire beyond offset+hysteresis")
	}
}

func TestEventA5(t *testing.T) {
	// The N1E2 instance's A5: serving < −118 and neighbour > −120.
	e := A5(QuantityRSRP, -118, -120)
	if !e.Entered(Measurement{RSRPDBm: -122.5}, Measurement{RSRPDBm: -105}) {
		t.Error("A5 should fire")
	}
	if e.Entered(Measurement{RSRPDBm: -110}, Measurement{RSRPDBm: -105}) {
		t.Error("A5 needs the serving side below threshold1")
	}
	if e.Entered(Measurement{RSRPDBm: -122.5}, Measurement{RSRPDBm: -125}) {
		t.Error("A5 needs the neighbour above threshold2")
	}
}

func TestEventB1(t *testing.T) {
	// The N2E2 instance's B1: RSRP > −115 (Fig. 33).
	e := B1(QuantityRSRP, -115)
	if !e.Entered(Measurement{}, Measurement{RSRPDBm: -114}) {
		t.Error("B1 should fire at -114")
	}
	if e.Entered(Measurement{}, Measurement{RSRPDBm: -115.5}) {
		t.Error("B1 should not fire at -115.5")
	}
}

func TestEventStrings(t *testing.T) {
	cases := map[string]EventConfig{
		"A2 RSRP < -156dBm":               A2(QuantityRSRP, -156),
		"A3 RSRQ offset > 6dB":            A3(QuantityRSRQ, 6),
		"B1 RSRP > -115dBm":               B1(QuantityRSRP, -115),
		"A5 RSRP < -118dBm and > -120dBm": A5(QuantityRSRP, -118, -120),
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if EventA3.String() != "A3" || EventKind(9).String() != "Event(9)" {
		t.Error("EventKind strings")
	}
	if QuantityRSRP.String() != "RSRP" || QuantityRSRQ.String() != "RSRQ" {
		t.Error("Quantity strings")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(-110.5, -110.5) {
		t.Error("identical values must compare equal")
	}
	if !ApproxEqual(-110.5, -110.5+1e-12) {
		t.Error("sub-epsilon difference must compare equal")
	}
	if ApproxEqual(-110.5, -110.4) {
		t.Error("0.1 dB apart must not compare equal")
	}
	if !ApproxEqualEps(-110.5, -110.2, 0.5) {
		t.Error("explicit tolerance should widen the match")
	}
}

package meas

import (
	"fmt"

	"github.com/mssn/loopscope/internal/units"
)

// Quantity selects which measurement quantity an event compares,
// matching the reportConfig triggerQuantity of TS 36.331 / TS 38.331.
type Quantity uint8

// The two trigger quantities used in the study.
const (
	QuantityRSRP Quantity = iota
	QuantityRSRQ
)

// String names the quantity.
func (q Quantity) String() string {
	if q == QuantityRSRQ {
		return "RSRQ"
	}
	return "RSRP"
}

// level extracts the configured quantity from a measurement as the
// quantity-polymorphic Level scalar (dBm for RSRP, dB for RSRQ).
func (q Quantity) level(m Measurement) units.Level {
	if q == QuantityRSRQ {
		return m.RSRQDB.Level()
	}
	return m.RSRPDBm.Level()
}

// EventKind enumerates the measurement-reporting events that appear in
// the paper's loop instances (TS 36.331 §5.5.4 / TS 38.331 §5.5.4).
type EventKind uint8

// Measurement events referenced in the paper:
//
//	A2: serving becomes worse than a threshold (release/poor-coverage trigger)
//	A3: neighbour becomes offset better than serving (handover / SCell-mod trigger)
//	A5: serving worse than threshold1 and neighbour better than threshold2
//	B1: inter-RAT neighbour becomes better than a threshold (5G SCG addition trigger)
const (
	EventA2 EventKind = iota
	EventA3
	EventA5
	EventB1
)

// String names the event ("A2", "A3", ...).
func (k EventKind) String() string {
	switch k {
	case EventA2:
		return "A2"
	case EventA3:
		return "A3"
	case EventA5:
		return "A5"
	case EventB1:
		return "B1"
	default:
		// Closed enum: only reachable on a corrupted or future value;
		// render it numerically rather than guessing.
		return fmt.Sprintf("Event(%d)", uint8(k))
	}
}

// EventConfig is one configured reporting event. Thresholds are
// quantity-scaled Levels (dBm when the quantity is RSRP, dB when it is
// RSRQ, mirroring threshold-RSRP/threshold-RSRQ in TS 36.331 §5.5.4);
// Offset and Hysteresis are always relative dB.
type EventConfig struct {
	Kind       EventKind
	Quantity   Quantity
	Threshold  units.Level // A2/B1: the threshold; A5: threshold1 (serving)
	Threshold2 units.Level // A5 only: threshold2 (neighbour)
	Offset     units.DB    // A3 only: the a3-Offset
	Hysteresis units.DB    // entering-condition hysteresis (Hys)
}

// A2 builds an A2 config ("serving worse than threshold").
func A2(q Quantity, threshold units.Level) EventConfig {
	return EventConfig{Kind: EventA2, Quantity: q, Threshold: threshold}
}

// A3 builds an A3 config ("neighbour offset better than serving").
func A3(q Quantity, offset units.DB) EventConfig {
	return EventConfig{Kind: EventA3, Quantity: q, Offset: offset}
}

// A5 builds an A5 config ("serving < t1 and neighbour > t2").
func A5(q Quantity, t1, t2 units.Level) EventConfig {
	return EventConfig{Kind: EventA5, Quantity: q, Threshold: t1, Threshold2: t2}
}

// B1 builds a B1 config ("inter-RAT neighbour better than threshold").
func B1(q Quantity, threshold units.Level) EventConfig {
	return EventConfig{Kind: EventB1, Quantity: q, Threshold: threshold}
}

// Entered evaluates the entering condition of the event given the
// serving-cell and neighbour-cell measurements. Events that do not use
// one of the sides ignore that argument (A2 ignores neighbour; B1
// ignores serving).
func (e EventConfig) Entered(serving, neighbour Measurement) bool {
	ms := e.Quantity.level(serving)
	mn := e.Quantity.level(neighbour)
	switch e.Kind {
	case EventA2:
		return ms.Shift(e.Hysteresis) < e.Threshold
	case EventA3:
		return mn.Shift(-e.Hysteresis) > ms.Shift(e.Offset)
	case EventA5:
		return ms.Shift(e.Hysteresis) < e.Threshold && mn.Shift(-e.Hysteresis) > e.Threshold2
	case EventB1:
		return mn.Shift(-e.Hysteresis) > e.Threshold
	default:
		// Closed enum: an unknown kind never triggers.
		return false
	}
}

// String renders the config the way the paper's appendix prints it,
// e.g. "A2 RSRP < -156dBm" or "A3 RSRQ offset > 6dB".
func (e EventConfig) String() string {
	unit := "dBm"
	if e.Quantity == QuantityRSRQ {
		unit = "dB"
	}
	switch e.Kind {
	case EventA2:
		return fmt.Sprintf("A2 %s < %g%s", e.Quantity, e.Threshold, unit)
	case EventA3:
		return fmt.Sprintf("A3 %s offset > %gdB", e.Quantity, e.Offset)
	case EventA5:
		return fmt.Sprintf("A5 %s < %g%s and > %g%s", e.Quantity, e.Threshold, unit, e.Threshold2, unit)
	case EventB1:
		return fmt.Sprintf("B1 %s > %g%s", e.Quantity, e.Threshold, unit)
	default:
		// Closed enum: only reachable on a corrupted or future value.
		return "Event(?)"
	}
}

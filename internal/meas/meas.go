// Package meas holds the 3GPP measurement vocabulary shared by the
// simulator and the log-analysis side: the RSRP/RSRQ observation type
// and the measurement-reporting events (A2, A3, A5, B1) of
// TS 36.331 / TS 38.331 §5.5.4.
//
// It is a leaf package on the methodology boundary (DESIGN.md): the
// NSG-style log format (internal/sig) and the RRC message model
// (internal/rrc) both speak in these terms, but neither may depend on
// the synthetic radio environment (internal/radio) that *produces*
// measurements in simulation. Keeping the vocabulary here lets the
// parser side stay log-only, the way the paper's methodology demands.
package meas

import "github.com/mssn/loopscope/internal/units"

// MeasurableFloorDBm is the weakest RSRP a UE can still detect and
// report. Cells below it silently vanish from measurement reports —
// exactly the S1E1 trigger ("no RSRP/RSRQ measurements of one or more 5G
// SCells", §5.1).
const MeasurableFloorDBm units.DBm = -125.0

// Measurement is one RSRP/RSRQ observation of a cell.
type Measurement struct {
	RSRPDBm units.DBm
	RSRQDB  units.DB
}

// Measurable reports whether the observation is strong enough for the
// UE to include it in a measurement report.
func (m Measurement) Measurable() bool { return m.RSRPDBm >= MeasurableFloorDBm }

// Epsilon is the default tolerance for comparing RSRP/RSRQ values in
// dB space, re-exported from internal/units where the comparison
// helpers now live.
const Epsilon = units.Epsilon

// ApproxEqual reports whether two dB-scale values are equal within
// Epsilon. It is the approved way to compare RSRP/RSRQ floats — direct
// == / != on them is rejected by loopvet's floatcmp analyzer. The
// implementation moved to internal/units so it can compare any unit
// type; this wrapper keeps the vocabulary package self-contained for
// its callers.
func ApproxEqual[T ~float64](a, b T) bool { return units.ApproxEqual(a, b) }

// ApproxEqualEps is ApproxEqual with an explicit tolerance.
func ApproxEqualEps[T ~float64](a, b T, eps float64) bool {
	return units.ApproxEqualEps(a, b, eps)
}

// Package meas holds the 3GPP measurement vocabulary shared by the
// simulator and the log-analysis side: the RSRP/RSRQ observation type
// and the measurement-reporting events (A2, A3, A5, B1) of
// TS 36.331 / TS 38.331 §5.5.4.
//
// It is a leaf package on the methodology boundary (DESIGN.md): the
// NSG-style log format (internal/sig) and the RRC message model
// (internal/rrc) both speak in these terms, but neither may depend on
// the synthetic radio environment (internal/radio) that *produces*
// measurements in simulation. Keeping the vocabulary here lets the
// parser side stay log-only, the way the paper's methodology demands.
package meas

import "math"

// MeasurableFloorDBm is the weakest RSRP a UE can still detect and
// report. Cells below it silently vanish from measurement reports —
// exactly the S1E1 trigger ("no RSRP/RSRQ measurements of one or more 5G
// SCells", §5.1).
const MeasurableFloorDBm = -125.0

// Measurement is one RSRP/RSRQ observation of a cell.
type Measurement struct {
	RSRPDBm float64
	RSRQDB  float64
}

// Measurable reports whether the observation is strong enough for the
// UE to include it in a measurement report.
func (m Measurement) Measurable() bool { return m.RSRPDBm >= MeasurableFloorDBm }

// Epsilon is the default tolerance for comparing RSRP/RSRQ values in
// dB space. Captured and simulated levels carry sub-0.1 dB noise, so
// exact float64 equality is never meaningful; 1e-9 dB is far below any
// physical resolution while still catching genuinely identical values.
const Epsilon = 1e-9

// ApproxEqual reports whether two dB-scale values are equal within
// Epsilon. It is the approved way to compare RSRP/RSRQ floats — direct
// == / != on them is rejected by loopvet's floatcmp analyzer.
func ApproxEqual(a, b float64) bool { return ApproxEqualEps(a, b, Epsilon) }

// ApproxEqualEps is ApproxEqual with an explicit tolerance.
func ApproxEqualEps(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

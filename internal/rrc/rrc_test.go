package rrc

import (
	"strings"
	"testing"

	"github.com/mssn/loopscope/internal/band"
	"github.com/mssn/loopscope/internal/cell"
	"github.com/mssn/loopscope/internal/meas"
)

func ref(s string) cell.Ref { return cell.MustRef(s) }

// TestKindNamesFollowSpec checks every message renders the 3GPP
// procedure name for both RRC specifications (TS 38.331 vs TS 36.331).
func TestKindNamesFollowSpec(t *testing.T) {
	r := ref("1@2")
	cases := []struct {
		msg  Message
		kind string
		rat  band.RAT
	}{
		{MIB{Rat: band.RATNR, Cell: r}, "MIB", band.RATNR},
		{SIB1{Rat: band.RATNR, Cell: r}, "SIB1", band.RATNR},
		{SetupRequest{Rat: band.RATNR, Cell: r}, "RRCSetupRequest", band.RATNR},
		{SetupRequest{Rat: band.RATLTE, Cell: r}, "RRCConnectionSetupRequest", band.RATLTE},
		{Setup{Rat: band.RATNR, Cell: r}, "RRCSetup", band.RATNR},
		{Setup{Rat: band.RATLTE, Cell: r}, "RRCConnectionSetup", band.RATLTE},
		{SetupComplete{Rat: band.RATNR, Cell: r}, "RRCSetupComplete", band.RATNR},
		{SetupComplete{Rat: band.RATLTE, Cell: r}, "RRCConnectionSetupComplete", band.RATLTE},
		{Reconfig{Rat: band.RATNR}, "RRCReconfiguration", band.RATNR},
		{Reconfig{Rat: band.RATLTE}, "RRCConnectionReconfiguration", band.RATLTE},
		{ReconfigComplete{Rat: band.RATNR}, "RRCReconfigurationComplete", band.RATNR},
		{ReconfigComplete{Rat: band.RATLTE}, "RRCConnectionReconfigurationComplete", band.RATLTE},
		{MeasReport{Rat: band.RATLTE}, "MeasurementReport", band.RATLTE},
		{SCGFailureInfo{FailureType: SCGFailureRandomAccess}, "SCGFailureInformationNR", band.RATLTE},
		{ReestablishmentRequest{Cause: ReestOtherFailure}, "RRCConnectionReestablishmentRequest", band.RATLTE},
		{ReestablishmentComplete{Cell: r}, "RRCConnectionReestablishmentComplete", band.RATLTE},
		{Release{Rat: band.RATNR}, "RRCRelease", band.RATNR},
		{Release{Rat: band.RATLTE}, "RRCConnectionRelease", band.RATLTE},
		{Exception{MMState: "DEREGISTERED"}, "EXCEPTION", band.RATNR},
	}
	for _, c := range cases {
		if got := c.msg.Kind(); got != c.kind {
			t.Errorf("%T Kind = %q, want %q", c.msg, got, c.kind)
		}
		if got := c.msg.RAT(); got != c.rat {
			t.Errorf("%T RAT = %v, want %v", c.msg, got, c.rat)
		}
	}
}

func TestSCellEntryString(t *testing.T) {
	e := SCellEntry{Index: 1, Cell: ref("273@387410")}
	want := "{sCellIndex 1, physCellId 273, absoluteFrequencySSB 387410}"
	if e.String() != want {
		t.Errorf("String = %q", e)
	}
}

func TestMeasObjectString(t *testing.T) {
	mo := MeasObject{Channels: []int{387410, 398410}, Event: meas.A2(meas.QuantityRSRP, -156)}
	if got := mo.String(); got != "A2 RSRP < -156dBm on 387410,398410" {
		t.Errorf("String = %q", got)
	}
}

func TestReconfigHelpers(t *testing.T) {
	mob := ref("97@5145")
	sp := ref("53@632736")
	plain := Reconfig{Rat: band.RATLTE}
	if plain.IsHandover() || plain.KeepsSCG() {
		t.Error("plain reconfig flags wrong")
	}
	ho := Reconfig{Rat: band.RATLTE, Mobility: &mob}
	if !ho.IsHandover() || ho.KeepsSCG() {
		t.Error("handover flags wrong")
	}
	hoKeep := Reconfig{Rat: band.RATLTE, Mobility: &mob, SpCell: &sp}
	if !hoKeep.IsHandover() || !hoKeep.KeepsSCG() {
		t.Error("SCG-carrying handover flags wrong")
	}
}

func TestMeasReportFind(t *testing.T) {
	m := MeasReport{Entries: []MeasEntry{
		{Cell: ref("1@2"), Role: RolePCell, Meas: meas.Measurement{RSRPDBm: -80}},
		{Cell: ref("3@4"), Role: RoleSCell, Meas: meas.Measurement{RSRPDBm: -90}},
	}}
	e, ok := m.Find(ref("3@4"))
	if !ok || e.Role != RoleSCell || e.Meas.RSRPDBm != -90 {
		t.Errorf("Find = %+v, %v", e, ok)
	}
	if _, ok := m.Find(ref("9@9")); ok {
		t.Error("Find should miss")
	}
}

func TestCausesAreSpecStrings(t *testing.T) {
	// The wire strings must match TS 36.331 enumerations — the parser
	// and classifier rely on them verbatim.
	if string(ReestOtherFailure) != "otherFailure" ||
		string(ReestHandoverFailure) != "handoverFailure" {
		t.Error("reestablishment cause strings drifted")
	}
	for _, c := range []SCGFailureCause{
		SCGFailureRandomAccess, SCGFailureRLF, SCGFailureMaxRetx, SCGFailureSyncError,
	} {
		if strings.ContainsAny(string(c), " \t") {
			t.Errorf("SCG failure cause %q contains whitespace", c)
		}
	}
	if string(SCGFailureRandomAccess) != "randomAccessProblem" {
		t.Error("randomAccessProblem string drifted")
	}
}

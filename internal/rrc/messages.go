// Package rrc models the Radio Resource Control messages and
// information elements that appear in the paper's loop instances: the
// connection-establishment triple, RRCReconfiguration with its
// sCellToAddModList / sCellToReleaseList / spCellConfig /
// mobilityControlInfo fields, measurement configuration and reporting,
// SCG failure information, re-establishment, and the modem exception the
// authors observed around SCell-modification failures (Appendix B).
//
// The types here are the shared vocabulary of three components: the
// network/UE simulator emits them, the NSG-style log format
// (internal/sig) serializes and parses them, and the serving-cell-set
// extractor (internal/trace) folds them into CS timelines.
package rrc

import (
	"fmt"
	"strings"

	"github.com/mssn/loopscope/internal/band"
	"github.com/mssn/loopscope/internal/cell"
	"github.com/mssn/loopscope/internal/meas"
	"github.com/mssn/loopscope/internal/units"
)

// Message is one RRC (or modem-status) message in a signaling capture.
type Message interface {
	// Kind returns the message's wire name as NSG prints it, e.g.
	// "RRCReconfiguration".
	Kind() string
	// RAT returns which RRC specification carries the message:
	// band.RATNR for TS 38.331, band.RATLTE for TS 36.331.
	RAT() band.RAT
}

// MIB is a master information block broadcast (BCCH_BCH).
type MIB struct {
	Rat  band.RAT
	Cell cell.Ref
}

// Kind implements Message.
func (MIB) Kind() string { return "MIB" }

// RAT implements Message.
func (m MIB) RAT() band.RAT { return m.Rat }

// SIB1 is the system information block carrying cell-selection
// parameters; ThreshRSRPDBm is the minimum RSRP for selecting a cell
// (the −108 dBm threshold of the §3 example).
type SIB1 struct {
	Rat           band.RAT
	Cell          cell.Ref
	ThreshRSRPDBm units.DBm
}

// Kind implements Message.
func (SIB1) Kind() string { return "SIB1" }

// RAT implements Message.
func (m SIB1) RAT() band.RAT { return m.Rat }

// SetupRequest is RRCSetupRequest (NR) / RRCConnectionSetupRequest (LTE).
type SetupRequest struct {
	Rat  band.RAT
	Cell cell.Ref
}

// Kind implements Message.
func (m SetupRequest) Kind() string {
	if m.Rat == band.RATNR {
		return "RRCSetupRequest"
	}
	return "RRCConnectionSetupRequest"
}

// RAT implements Message.
func (m SetupRequest) RAT() band.RAT { return m.Rat }

// Setup is RRCSetup (NR) / RRCConnectionSetup (LTE).
type Setup struct {
	Rat  band.RAT
	Cell cell.Ref
}

// Kind implements Message.
func (m Setup) Kind() string {
	if m.Rat == band.RATNR {
		return "RRCSetup"
	}
	return "RRCConnectionSetup"
}

// RAT implements Message.
func (m Setup) RAT() band.RAT { return m.Rat }

// SetupComplete is RRCSetupComplete / RRCConnectionSetupComplete.
type SetupComplete struct {
	Rat  band.RAT
	Cell cell.Ref
}

// Kind implements Message.
func (m SetupComplete) Kind() string {
	if m.Rat == band.RATNR {
		return "RRCSetupComplete"
	}
	return "RRCConnectionSetupComplete"
}

// RAT implements Message.
func (m SetupComplete) RAT() band.RAT { return m.Rat }

// SCellEntry is one sCellToAddModList element: an SCell index bound to a
// physical cell on a channel.
type SCellEntry struct {
	Index int
	Cell  cell.Ref
}

// String renders the entry the way the appendix logs print it.
func (s SCellEntry) String() string {
	return fmt.Sprintf("{sCellIndex %d, physCellId %d, absoluteFrequencySSB %d}",
		s.Index, s.Cell.PCI, s.Cell.Channel)
}

// MeasObject is one configured measurement: an event armed on a set of
// channels (the appendix prints these as, e.g., "A2 event on 387410,
// 398410 and 521310: RSRP < -156dbm").
type MeasObject struct {
	Channels []int
	Event    meas.EventConfig
}

// String renders the configured measurement.
func (m MeasObject) String() string {
	chs := make([]string, len(m.Channels))
	for i, c := range m.Channels {
		chs[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("%s on %s", m.Event, strings.Join(chs, ","))
}

// Reconfig is RRCReconfiguration (NR) / RRCConnectionReconfiguration
// (LTE), the workhorse message of every loop type. Only the fields the
// study uses are modeled; absent fields are zero.
type Reconfig struct {
	Rat     band.RAT
	Serving cell.Ref // PCell issuing the command

	// MCG SCell management (SA loops).
	AddSCells     []SCellEntry
	ReleaseSCells []int // sCellToReleaseList, by index

	// SCG management carried by LTE RRC in EN-DC (NSA loops).
	SpCell     *cell.Ref  // spCellConfig: the NR PSCell
	SCGSCells  []cell.Ref // NR SCG secondary cells
	SCGRelease bool       // release the whole SCG

	// 4G PCell handover (N1E2/N2E1).
	Mobility *cell.Ref // mobilityControlInfo target

	// Measurement configuration updates.
	MeasConfig []MeasObject
}

// Kind implements Message.
func (m Reconfig) Kind() string {
	if m.Rat == band.RATNR {
		return "RRCReconfiguration"
	}
	return "RRCConnectionReconfiguration"
}

// RAT implements Message.
func (m Reconfig) RAT() band.RAT { return m.Rat }

// IsHandover reports whether the reconfiguration changes the PCell.
func (m Reconfig) IsHandover() bool { return m.Mobility != nil }

// KeepsSCG reports whether a handover reconfiguration re-provisions the
// SCG; Appendix B: mobilityControlInfo without spCellConfig loses 5G.
func (m Reconfig) KeepsSCG() bool { return m.SpCell != nil }

// ReconfigComplete acknowledges a Reconfig.
type ReconfigComplete struct {
	Rat band.RAT
}

// Kind implements Message.
func (m ReconfigComplete) Kind() string {
	if m.Rat == band.RATNR {
		return "RRCReconfigurationComplete"
	}
	return "RRCConnectionReconfigurationComplete"
}

// RAT implements Message.
func (m ReconfigComplete) RAT() band.RAT { return m.Rat }

// MeasRole labels a measurement-report entry the way NSG annotates it.
type MeasRole string

// Roles a reported cell can play.
const (
	RolePCell     MeasRole = "PCell"
	RolePSCell    MeasRole = "PSCell"
	RoleSCell     MeasRole = "SCell"
	RoleCandidate MeasRole = "candidate"
)

// MeasEntry is one reported cell measurement.
type MeasEntry struct {
	Cell cell.Ref
	Role MeasRole
	Meas meas.Measurement
}

// MeasReport is a MeasurementReport message.
type MeasReport struct {
	Rat     band.RAT
	Entries []MeasEntry
}

// Kind implements Message.
func (MeasReport) Kind() string { return "MeasurementReport" }

// RAT implements Message.
func (m MeasReport) RAT() band.RAT { return m.Rat }

// Find returns the entry for r and whether it is present; S1E1 detection
// is exactly "serving SCell absent from reports".
func (m MeasReport) Find(r cell.Ref) (MeasEntry, bool) {
	for _, e := range m.Entries {
		if e.Cell == r {
			return e, true
		}
	}
	return MeasEntry{}, false
}

// SCGFailureCause enumerates the failureType values of
// SCGFailureInformationNR seen in the study.
type SCGFailureCause string

// SCG failure causes (TS 36.331 SCGFailureInformationNR).
const (
	SCGFailureRandomAccess SCGFailureCause = "randomAccessProblem"
	SCGFailureRLF          SCGFailureCause = "scg-RadioLinkFailure"
	SCGFailureMaxRetx      SCGFailureCause = "maxRetransmissions"
	SCGFailureSyncError    SCGFailureCause = "synchronousReconfigFailure"
)

// SCGFailureInfo is the SCGFailureInformationNR message (N2E2 trigger).
type SCGFailureInfo struct {
	FailureType SCGFailureCause
}

// Kind implements Message.
func (SCGFailureInfo) Kind() string { return "SCGFailureInformationNR" }

// RAT implements Message.
func (SCGFailureInfo) RAT() band.RAT { return band.RATLTE }

// ReestCause enumerates reestablishmentCause values (TS 36.331).
type ReestCause string

// Re-establishment causes observed in the study.
const (
	ReestOtherFailure    ReestCause = "otherFailure"    // N1E1: radio link failure
	ReestHandoverFailure ReestCause = "handoverFailure" // N1E2
)

// ReestablishmentRequest is RRCConnectionReestablishmentRequest.
type ReestablishmentRequest struct {
	Cause ReestCause
}

// Kind implements Message.
func (ReestablishmentRequest) Kind() string { return "RRCConnectionReestablishmentRequest" }

// RAT implements Message.
func (ReestablishmentRequest) RAT() band.RAT { return band.RATLTE }

// ReestablishmentComplete is RRCConnectionReestablishmentComplete; Cell
// is the PCell the connection re-anchors on.
type ReestablishmentComplete struct {
	Cell cell.Ref
}

// Kind implements Message.
func (ReestablishmentComplete) Kind() string { return "RRCConnectionReestablishmentComplete" }

// RAT implements Message.
func (ReestablishmentComplete) RAT() band.RAT { return band.RATLTE }

// Release is RRCRelease / RRCConnectionRelease: the network tears the
// connection down and the UE returns to IDLE.
type Release struct {
	Rat band.RAT
}

// Kind implements Message.
func (m Release) Kind() string {
	if m.Rat == band.RATNR {
		return "RRCRelease"
	}
	return "RRCConnectionRelease"
}

// RAT implements Message.
func (m Release) RAT() band.RAT { return m.Rat }

// Exception is the modem anomaly NSG records around SCell-modification
// failures (Appendix B, Fig. 26): no over-the-air message, the MM5G
// state machine drops to DEREGISTERED and every serving cell is
// released. It is modeled as a message so logs can carry it.
type Exception struct {
	MMState  string // e.g. "DEREGISTERED"
	Substate string // e.g. "NO_CELL_AVAILABLE"
}

// Kind implements Message.
func (Exception) Kind() string { return "EXCEPTION" }

// RAT implements Message.
func (Exception) RAT() band.RAT { return band.RATNR }

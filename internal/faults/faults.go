// Package faults is a seeded, deterministic capture-impairment
// injector: it corrupts an emitted NSG-style signaling log the way real
// captures break. Measurement campaigns never get pristine logs — the
// logger crashes mid-run, duplicates and reorders packets, interleaves
// foreign diagnostic records, garbles numeric fields and resets its
// clock after a restart. The injector models each of those artifacts as
// an independent fault with its own rate, so the salvage pipeline
// (sig.ParseLenient → trace.FromLog → campaign failure records) can be
// exercised and measured under controlled, reproducible damage.
//
// All corruption is a pure function of (seed, rates, input): the same
// injector configuration always yields the same corrupted text.
package faults

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"github.com/mssn/loopscope/internal/obs"
)

// Rates configures the probability of each fault class. Line-level
// rates apply independently per line; structural rates apply per event
// block or once per capture. The zero value injects nothing.
type Rates struct {
	// DropLine removes a line (per line). Dropping a header orphans its
	// detail lines onto the previous record; dropping a detail usually
	// costs the record a mandatory field.
	DropLine float64
	// DupLine repeats a line immediately (per line) — duplicated
	// packets in the capture stream.
	DupLine float64
	// GarbleField scrambles one numeric field of a line (per line),
	// modeling bit rot and mis-decoded payloads.
	GarbleField float64
	// Interleave inserts a foreign diagnostic record before a line (per
	// line), the chatter real NSG exports carry between RRC packets.
	Interleave float64
	// ClockJump rewrites an event's timestamp by a random offset (per
	// event block), modeling clock steps and buffered flushes.
	ClockJump float64
	// ReorderSwap swaps an event block with its successor (per event
	// block) — out-of-order delivery from the diag transport.
	ReorderSwap float64
	// Restart models one mid-capture logger restart: the clock resets
	// to zero at a random event boundary and a restart banner is
	// interleaved. Applied at most once, with this probability.
	Restart float64
	// Truncate cuts the capture at a random byte offset in its second
	// half — the logger died before the run ended. Applied at most
	// once, with this probability.
	Truncate float64
}

// Uniform spreads a single per-line fault budget evenly across the four
// line-level faults: each line is corrupted with probability rate, the
// fault kind chosen uniformly. Structural faults stay off.
func Uniform(rate float64) Rates {
	return Rates{
		DropLine:    rate / 4,
		DupLine:     rate / 4,
		GarbleField: rate / 4,
		Interleave:  rate / 4,
	}
}

// Profile extends Uniform with the structural faults at proportional
// rates — the "everything that goes wrong in the field" preset the
// robustness experiment sweeps.
func Profile(rate float64) Rates {
	r := Uniform(rate)
	r.ClockJump = rate / 4
	r.ReorderSwap = rate / 4
	r.Restart = rate * 2 // rare events: still likely at a 20% sweep point
	r.Truncate = rate
	if r.Restart > 1 {
		r.Restart = 1
	}
	if r.Truncate > 1 {
		r.Truncate = 1
	}
	return r
}

// Injector applies a fault profile deterministically.
type Injector struct {
	rates Rates
	rng   *rand.Rand
	c     obs.Collector
}

// New returns an injector seeded for reproducible corruption.
func New(seed int64, rates Rates) *Injector {
	return &Injector{rates: rates, rng: rand.New(rand.NewSource(seed))}
}

// WithCollector routes per-fault-kind injection counts
// ("faults.<kind>") into c and returns the injector. Counting never
// consumes the RNG stream, so the corrupted output is byte-identical
// with or without a collector.
func (in *Injector) WithCollector(c obs.Collector) *Injector {
	in.c = c
	return in
}

// count bumps one fault-kind counter when a collector is attached.
func (in *Injector) count(name string) {
	if in.c != nil {
		in.c.Add(name, 1)
	}
}

// foreignLines is the pool of interleaved non-RRC diagnostics.
var foreignLines = []string{
	"0x17DE  LTE ML1 Serving Cell Measurement Result",
	"0x1FEB  Diag packet CRC mismatch, payload dropped",
	"QXDM trace buffer watermark 87%",
	"  raw payload: 9b 3f 00 c4 71 aa 02 e0",
	"modem heartbeat ok seq=10421",
}

// restartBanner is interleaved where a logger restart is injected.
var restartBanner = []string{
	"NSG logger restarted (previous session ended unexpectedly)",
	"diag port reopened, clock re-anchored",
}

// block is one event (header + indented details) or one foreign line.
type block struct {
	lines []string
	at    time.Duration // header timestamp, valid when event
	event bool
}

// Corrupt returns the text with the configured faults injected. The
// input is treated as '\n'-separated lines; a trailing newline is
// preserved. It is the streaming Reader drained into a string; the two
// paths are byte-identical for the same injector state.
func (in *Injector) Corrupt(text string) string {
	var sb strings.Builder
	sb.Grow(len(text) + len(text)/8)
	//lint:ignore loopvet/errflow string source and Builder sink cannot error; the blank is the documented all-paths-infallible idiom
	_, _ = io.Copy(&sb, in.Reader(strings.NewReader(text))) // a string source never errors
	return sb.String()
}

// roll draws one Bernoulli trial.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// garbleAlphabet intentionally favors non-digits so a scrambled numeric
// field actually breaks the strict grammar instead of silently changing
// a value.
const garbleAlphabet = "xqz#?!0f"

// garble scrambles one randomly chosen digit run of the line.
func (in *Injector) garble(line string) string {
	type run struct{ lo, hi int }
	var runs []run
	for i := 0; i < len(line); {
		if line[i] < '0' || line[i] > '9' {
			i++
			continue
		}
		j := i
		for j < len(line) && line[j] >= '0' && line[j] <= '9' {
			j++
		}
		runs = append(runs, run{i, j})
		i = j
	}
	if len(runs) == 0 {
		return line
	}
	r := runs[in.rng.Intn(len(runs))]
	b := []byte(line)
	for i := r.lo; i < r.hi; i++ {
		b[i] = garbleAlphabet[in.rng.Intn(len(garbleAlphabet))]
	}
	return string(b)
}

// setTime rewrites the block's header timestamp (clamped at zero).
func (b *block) setTime(t time.Duration) {
	if t < 0 {
		t = 0
	}
	b.at = t
	if sp := strings.IndexByte(b.lines[0], ' '); sp > 0 {
		b.lines[0] = formatClock(t) + b.lines[0][sp:]
	}
}

// headerTime recognizes the "HH:MM:SS.mmm " prefix of an event header.
func headerTime(line string) (time.Duration, bool) {
	sp := strings.IndexByte(line, ' ')
	if sp <= 0 || strings.HasPrefix(line, " ") {
		return 0, false
	}
	var h, m, s, ms int
	if n, err := fmt.Sscanf(line[:sp], "%d:%d:%d.%d", &h, &m, &s, &ms); err != nil || n != 4 {
		return 0, false
	}
	if h < 0 || m < 0 || m > 59 || s < 0 || s > 59 || ms < 0 || ms > 999 {
		return 0, false
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute +
		time.Duration(s)*time.Second + time.Duration(ms)*time.Millisecond, true
}

// formatClock renders a duration as the HH:MM:SS.mmm log clock.
func formatClock(d time.Duration) string {
	ms := d.Milliseconds()
	return fmt.Sprintf("%02d:%02d:%02d.%03d", ms/3600000, ms/60000%60, ms/1000%60, ms%1000)
}

package faults

import (
	"bufio"
	"io"
	"strings"
	"time"
)

// restartHazard is the per-boundary trigger probability once a restart
// has been armed. A streaming corruptor cannot pick a uniformly random
// boundary the way the whole-string algorithm did (the block count is
// unknown until EOF), so the restart is modeled as a hazard instead:
// one Restart-rate roll arms it at the first block boundary, then each
// boundary fires with this probability. For captures longer than a few
// dozen blocks the overall restart probability converges to the
// configured rate.
const restartHazard = 1.0 / 8

// truncateHold bounds the bytes held back when Truncate is enabled: the
// truncation point is only known at EOF, so the reader delays at most
// this much output. Captures larger than twice this bound may truncate
// slightly later than the whole-string algorithm would (the cut is
// clamped to the held window); the cut still lands in the second half.
const truncateHold = 1 << 20

// Reader wraps r with the injector's fault profile: records are
// corrupted as they flow through, so a multi-MiB capture is never
// materialized. Corrupt is this reader drained into a string — the two
// are byte-identical for the same injector state.
//
// The reader consumes the injector's seeded RNG stream. Use a fresh
// injector (or accept that draws continue where the last corruption
// left off) when reproducibility matters.
func (in *Injector) Reader(r io.Reader) io.Reader {
	cr := &corruptReader{in: in, br: bufio.NewReaderSize(r, 32*1024)}
	if in.rates.Truncate > 0 {
		cr.holding = true
	}
	return cr
}

// corruptReader is the streaming corruption state machine. Input lines
// are grouped into blocks exactly as toBlocks does; each completed
// block passes through the structural stage (clock jumps, a one-block
// swap lookahead, the restart hazard) and then the line-level stage,
// whose output is served to the caller — held back only by the bounded
// truncation window.
type corruptReader struct {
	in *Injector
	br *bufio.Reader

	lineBuf []byte // reused by readLine
	readAny bool   // any input byte seen
	lastNL  bool   // most recent input line ended with '\n'
	srcEOF  bool
	srcErr  error // non-EOF input error, served after pending output

	cur  *block // event block under assembly
	held *block // event block awaiting its swap partner

	emitIdx        int // blocks emitted, in final order
	restartDecided bool
	restartArmed   bool
	restartDone    bool
	rebase         bool // restart fired: rebase event clocks
	haveT0         bool
	t0             time.Duration

	wroteLine bool // separator bookkeeping: a '\n' precedes every line but the first
	outTotal  int  // total corrupted bytes produced (pre-truncation)
	hold      []byte
	holding   bool // Truncate enabled: route output through hold
	serve     []byte
	done      bool
}

func (cr *corruptReader) Read(p []byte) (int, error) {
	for len(cr.serve) == 0 && !cr.done {
		cr.step()
	}
	if len(cr.serve) == 0 {
		if cr.srcErr != nil {
			return 0, cr.srcErr
		}
		return 0, io.EOF
	}
	n := copy(p, cr.serve)
	cr.serve = cr.serve[n:]
	return n, nil
}

// step consumes one input line (or finalizes at EOF), possibly
// producing served output.
func (cr *corruptReader) step() {
	if cr.srcEOF {
		cr.finish()
		return
	}
	line, sawNL, err := cr.readLine()
	if err != nil && err != io.EOF {
		cr.srcErr = err
		cr.srcEOF = true
		cr.finish()
		return
	}
	if err == io.EOF {
		cr.srcEOF = true
		if len(line) == 0 && !sawNL {
			// EOF on a line boundary — unless the input was entirely
			// empty, which the split-based algorithm treats as one
			// empty line.
			if cr.readAny {
				cr.finish()
				return
			}
		}
	}
	cr.readAny = true
	cr.lastNL = sawNL
	cr.feedLine(string(line))
	if cr.srcEOF {
		cr.finish()
	}
}

// readLine reads up to the next '\n' (exclusive), growing past the
// bufio window when needed — line length is unbounded, matching the
// whole-string algorithm.
func (cr *corruptReader) readLine() (line []byte, sawNL bool, err error) {
	cr.lineBuf = cr.lineBuf[:0]
	for {
		chunk, e := cr.br.ReadSlice('\n')
		cr.lineBuf = append(cr.lineBuf, chunk...)
		if e == bufio.ErrBufferFull {
			continue
		}
		if n := len(cr.lineBuf); n > 0 && cr.lineBuf[n-1] == '\n' {
			return cr.lineBuf[:n-1], true, nil
		}
		return cr.lineBuf, false, e
	}
}

// feedLine advances block assembly: headers open a new event block,
// indented or blank lines continue one, anything else is its own
// foreign block.
func (cr *corruptReader) feedLine(line string) {
	if at, ok := headerTime(line); ok {
		cr.closeCur()
		cr.cur = &block{lines: []string{line}, at: at, event: true}
		return
	}
	if cr.cur != nil && (strings.HasPrefix(line, "  ") || strings.TrimSpace(line) == "") {
		cr.cur.lines = append(cr.cur.lines, line)
		return
	}
	cr.closeCur()
	cr.dispatch(block{lines: []string{line}})
}

// closeCur dispatches the event block under assembly, if any.
func (cr *corruptReader) closeCur() {
	if cr.cur == nil {
		return
	}
	b := *cr.cur
	cr.cur = nil
	cr.dispatch(b)
}

// dispatch is the structural stage: clock jumps and the swap lookahead.
// A block arriving while another is held is the held block's swap
// partner and is emitted first, skipping its own structural rolls —
// the same skip the in-place algorithm performs after a swap.
func (cr *corruptReader) dispatch(b block) {
	if cr.held != nil {
		h := *cr.held
		cr.held = nil
		cr.emitBlock(b)
		cr.emitBlock(h)
		return
	}
	if b.event {
		if cr.in.roll(cr.in.rates.ClockJump) {
			cr.in.count("faults.clock_jump")
			jump := time.Duration(cr.in.rng.Intn(150_000)-30_000) * time.Millisecond
			b.setTime(b.at + jump)
		}
		if cr.in.roll(cr.in.rates.ReorderSwap) {
			cr.in.count("faults.reorder_swap")
			cr.held = &b
			return
		}
	}
	cr.emitBlock(b)
}

// emitBlock runs the restart hazard at the block boundary, rebases the
// clock when a restart has fired, then hands the block to the
// line-level stage.
func (cr *corruptReader) emitBlock(b block) {
	if cr.emitIdx >= 1 && !cr.restartDone {
		if !cr.restartDecided {
			cr.restartDecided = true
			cr.restartArmed = cr.in.roll(cr.in.rates.Restart)
			if !cr.restartArmed {
				cr.restartDone = true
			}
		}
		if cr.restartArmed && cr.in.rng.Float64() < restartHazard {
			cr.in.count("faults.restart")
			cr.restartDone = true
			cr.rebase = true
			cr.emitLines(block{lines: restartBanner})
			cr.emitIdx++
		}
	}
	if cr.rebase && b.event {
		if !cr.haveT0 {
			cr.haveT0 = true
			cr.t0 = b.at
		}
		b.setTime(b.at - cr.t0)
	}
	cr.emitLines(b)
	cr.emitIdx++
}

// emitLines is the line-level stage: per line, an optional interleaved
// foreign record, then drop / duplicate / garble.
func (cr *corruptReader) emitLines(b block) {
	for _, line := range b.lines {
		if cr.in.roll(cr.in.rates.Interleave) {
			cr.in.count("faults.interleave")
			cr.writeLine(foreignLines[cr.in.rng.Intn(len(foreignLines))])
		}
		switch {
		case cr.in.roll(cr.in.rates.DropLine):
			cr.in.count("faults.drop_line")
			continue
		case cr.in.roll(cr.in.rates.DupLine):
			cr.in.count("faults.dup_line")
			cr.writeLine(line)
			cr.writeLine(line)
		case cr.in.roll(cr.in.rates.GarbleField):
			cr.in.count("faults.garble_field")
			cr.writeLine(cr.in.garble(line))
		default:
			cr.writeLine(line)
		}
	}
}

// writeLine emits one output line, '\n'-separated from its predecessor.
func (cr *corruptReader) writeLine(line string) {
	if cr.wroteLine {
		cr.writeByte('\n')
	}
	cr.wroteLine = true
	cr.writeBytes(line)
}

func (cr *corruptReader) writeByte(c byte) {
	cr.outTotal++
	if cr.holding {
		cr.hold = append(cr.hold, c)
		cr.spillHold()
	} else {
		cr.serve = append(cr.serve, c)
	}
}

func (cr *corruptReader) writeBytes(s string) {
	cr.outTotal += len(s)
	if cr.holding {
		cr.hold = append(cr.hold, s...)
		cr.spillHold()
	} else {
		cr.serve = append(cr.serve, s...)
	}
}

// spillHold keeps the hold-back window bounded: bytes beyond the
// truncation window can never be cut and are served immediately.
func (cr *corruptReader) spillHold() {
	if excess := len(cr.hold) - truncateHold; excess > 0 {
		cr.serve = append(cr.serve, cr.hold[:excess]...)
		cr.hold = append(cr.hold[:0], cr.hold[excess:]...)
	}
}

// finish flushes assembly state at EOF and applies the trailing-newline
// and truncation rules.
func (cr *corruptReader) finish() {
	if cr.done {
		return
	}
	cr.done = true
	cr.closeCur()
	if cr.held != nil {
		// A swap rolled on the final block has no partner; it stays in
		// place, as in the in-place algorithm.
		h := *cr.held
		cr.held = nil
		cr.emitBlock(h)
	}
	if cr.lastNL && cr.wroteLine {
		cr.writeByte('\n')
	}
	if cr.in.roll(cr.in.rates.Truncate) && cr.outTotal > 1 {
		cr.in.count("faults.truncate")
		cut := cr.outTotal/2 + cr.in.rng.Intn(cr.outTotal-cr.outTotal/2)
		if drop := cr.outTotal - cut; drop > 0 {
			if drop > len(cr.hold) {
				drop = len(cr.hold) // cut clamped to the held window
			}
			cr.hold = cr.hold[:len(cr.hold)-drop]
		}
	}
	cr.serve = append(cr.serve, cr.hold...)
	cr.hold = nil
}

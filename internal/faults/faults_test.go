package faults

import (
	"strings"
	"testing"
	"time"

	"github.com/mssn/loopscope/internal/obs"
)

// sample builds a small clean capture-shaped text.
func sample() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		t := time.Duration(i) * 3 * time.Second
		b.WriteString(formatClock(t) + " NR5G RRC OTA Packet -- UL_CCCH / RRCSetupRequest\n")
		b.WriteString("  Physical Cell ID = 393, NR Cell Global ID = 21320959, Freq = 521310\n")
	}
	return b.String()
}

func TestZeroRatesAreIdentity(t *testing.T) {
	text := sample()
	if got := New(1, Rates{}).Corrupt(text); got != text {
		t.Error("zero-rate injector must not modify the capture")
	}
}

// TestCollectorDoesNotPerturbOutput is the faults side of the metrics
// parity guarantee: counting what was injected never consumes the RNG
// stream, so the corrupted text is byte-identical with and without a
// collector attached.
func TestCollectorDoesNotPerturbOutput(t *testing.T) {
	text := sample()
	for _, rates := range []Rates{Uniform(0.2), Profile(0.10), {Restart: 1, Truncate: 1, ClockJump: 0.3}} {
		plain := New(42, rates).Corrupt(text)
		reg := obs.NewRegistry()
		observed := New(42, rates).WithCollector(reg).Corrupt(text)
		if plain != observed {
			t.Fatalf("rates %+v: corruption diverged once a collector was attached", rates)
		}
	}
}

// TestCollectorCountsFaults: each fired fault class shows up under its
// faults.* counter.
func TestCollectorCountsFaults(t *testing.T) {
	text := sample()
	reg := obs.NewRegistry()
	New(42, Rates{GarbleField: 0.3, DropLine: 0.2, DupLine: 0.2}).WithCollector(reg).Corrupt(text)
	for _, name := range []string{"faults.garble_field", "faults.drop_line", "faults.dup_line"} {
		if got := reg.Counter(name).Value(); got == 0 {
			t.Errorf("%s = 0, want > 0 at these rates on a 40-event capture", name)
		}
	}
	reg2 := obs.NewRegistry()
	New(3, Rates{Truncate: 1, Restart: 1}).WithCollector(reg2).Corrupt(text)
	if got := reg2.Counter("faults.truncate").Value(); got != 1 {
		t.Errorf("faults.truncate = %d, want 1", got)
	}
	if got := reg2.Counter("faults.restart").Value(); got == 0 {
		t.Error("faults.restart = 0, want > 0 at rate 1")
	}
	// No collector, no panic: the nil path stays silent.
	New(42, Uniform(0.2)).Corrupt(text)
}

func TestDeterministic(t *testing.T) {
	text := sample()
	r := Profile(0.10)
	a := New(42, r).Corrupt(text)
	b := New(42, r).Corrupt(text)
	if a != b {
		t.Error("same seed and rates must yield identical corruption")
	}
	c := New(43, r).Corrupt(text)
	if a == c {
		t.Error("different seeds should diverge on a 40-event capture")
	}
}

func TestUniformCorrupts(t *testing.T) {
	text := sample()
	got := New(7, Uniform(0.2)).Corrupt(text)
	if got == text {
		t.Error("20% uniform faults left the capture untouched")
	}
	// Line-level faults only: the capture must not be truncated and no
	// clock rewrite happens, so the last header keeps its timestamp.
	if !strings.Contains(got, "00:01:57.000") {
		t.Error("uniform profile should not rewrite timestamps")
	}
}

func TestTruncate(t *testing.T) {
	text := sample()
	r := Rates{Truncate: 1}
	got := New(3, r).Corrupt(text)
	if len(got) >= len(text) {
		t.Fatalf("truncation did not shorten the capture: %d vs %d", len(got), len(text))
	}
	if len(got) < len(text)/2 {
		t.Errorf("truncation cut before the halfway point: %d of %d", len(got), len(text))
	}
	if !strings.HasPrefix(text, got) {
		t.Error("truncation must be a prefix cut")
	}
}

func TestRestartResetsClock(t *testing.T) {
	text := sample()
	got := New(5, Rates{Restart: 1}).Corrupt(text)
	if !strings.Contains(got, restartBanner[0]) {
		t.Fatal("restart should interleave its banner")
	}
	// After the banner the clock restarts near zero: some header after
	// it must carry a timestamp smaller than the one before the banner.
	pre, post, _ := strings.Cut(got, restartBanner[0])
	lastPre, firstPost := lastHeaderTime(pre), firstHeaderTime(post)
	if firstPost >= lastPre {
		t.Errorf("clock did not regress across the restart: %v then %v", lastPre, firstPost)
	}
}

func TestGarbleBreaksDigits(t *testing.T) {
	in := New(11, Rates{})
	line := "  Physical Cell ID = 393, Freq = 521310"
	got := in.garble(line)
	if got == line {
		t.Fatal("garble should scramble one digit run")
	}
	if len(got) != len(line) {
		t.Error("garble must preserve line length")
	}
	if in.garble("no digits here") != "no digits here" {
		t.Error("garble without digit runs must be a no-op")
	}
}

func lastHeaderTime(text string) time.Duration {
	var last time.Duration
	for _, l := range strings.Split(text, "\n") {
		if at, ok := headerTime(l); ok {
			last = at
		}
	}
	return last
}

func firstHeaderTime(text string) time.Duration {
	for _, l := range strings.Split(text, "\n") {
		if at, ok := headerTime(l); ok {
			return at
		}
	}
	return -1
}

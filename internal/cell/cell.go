// Package cell models cells and serving cell sets (CS) exactly the way
// the paper reasons about them: a cell is "ID@FreqChannelNo" running one
// RAT over one frequency channel; radio access at any instant is a
// serving cell set made of a master cell group (MCG) and an optional
// secondary cell group (SCG), each with one primary cell and optional
// SCells (§2).
package cell

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/mssn/loopscope/internal/band"
	"github.com/mssn/loopscope/internal/geo"
	"github.com/mssn/loopscope/internal/units"
)

// Ref identifies a cell the way the paper denotes it: ID@FreqChannelNo,
// where ID is the physical cell identity and FreqChannelNo is the
// ARFCN (5G) or EARFCN (4G).
type Ref struct {
	PCI     int // physical cell identity
	Channel int // ARFCN / EARFCN
}

// String renders the paper's ID@FreqChannelNo notation, e.g. "393@521310".
func (r Ref) String() string { return fmt.Sprintf("%d@%d", r.PCI, r.Channel) }

// IsZero reports whether r is the zero Ref (no cell).
func (r Ref) IsZero() bool { return r.PCI == 0 && r.Channel == 0 }

// ParseRef parses the ID@FreqChannelNo notation.
func ParseRef(s string) (Ref, error) {
	i := strings.IndexByte(s, '@')
	if i <= 0 || i == len(s)-1 {
		return Ref{}, fmt.Errorf("cell: malformed ref %q (want ID@Channel)", s)
	}
	pci, err := strconv.Atoi(s[:i])
	if err != nil {
		return Ref{}, fmt.Errorf("cell: bad PCI in %q: %w", s, err)
	}
	ch, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Ref{}, fmt.Errorf("cell: bad channel in %q: %w", s, err)
	}
	return Ref{PCI: pci, Channel: ch}, nil
}

// MustRef is ParseRef for static tables; it panics on malformed input.
func MustRef(s string) Ref {
	r, err := ParseRef(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Cell is a deployed cell: a Ref plus its RAT and physical attributes.
type Cell struct {
	Ref
	RAT        band.RAT
	Pos        geo.Point // tower position in the area frame
	TxPowerDBm units.DBm // effective transmit power incl. antenna gain
	// NoiseDB shifts this cell's effective RSRQ; wide, busy channels
	// carry more interference than narrow ones. It is a relative
	// degradation, not an absolute noise floor — hence dB, not dBm.
	NoiseDB units.DB
	// MIMOLayers is the spatial-multiplexing configuration the network
	// offers on this cell (2 for 2x2, 4 for 4x4), which §4.4 ties to
	// device-dependent serving-cell selection.
	MIMOLayers int
}

// Band returns the study's band label for the cell ("n41", "2", ...).
func (c *Cell) Band() string { return band.BandName(c.RAT, c.Channel) }

// FreqMHz returns the cell's carrier frequency in MHz (0 if unknown).
func (c *Cell) FreqMHz() float64 {
	f, _ := band.FreqMHz(c.RAT, c.Channel)
	return f
}

// WidthMHz returns the channel width used by this cell.
func (c *Cell) WidthMHz() float64 { return band.DefaultWidthMHz(c.RAT, c.Channel) }

// Is5G reports whether the cell runs NR.
func (c *Cell) Is5G() bool { return c.RAT == band.RATNR }

// Group is a cell group: one primary cell plus optional SCells.
type Group struct {
	RAT     band.RAT
	Primary Ref   // PCell (MCG) or PSCell (SCG)
	SCells  []Ref // secondary cells, order of addition
}

// NewGroup returns a group with the given primary and no SCells.
func NewGroup(rat band.RAT, primary Ref) *Group {
	return &Group{RAT: rat, Primary: primary}
}

// Clone returns a deep copy of g (nil-safe).
func (g *Group) Clone() *Group {
	if g == nil {
		return nil
	}
	cp := *g
	cp.SCells = append([]Ref(nil), g.SCells...)
	return &cp
}

// AddSCell appends an SCell if not already present; it reports whether
// the group changed.
func (g *Group) AddSCell(r Ref) bool {
	if r == g.Primary {
		return false
	}
	for _, s := range g.SCells {
		if s == r {
			return false
		}
	}
	g.SCells = append(g.SCells, r)
	return true
}

// RemoveSCell removes an SCell; it reports whether the cell was present.
func (g *Group) RemoveSCell(r Ref) bool {
	for i, s := range g.SCells {
		if s == r {
			g.SCells = append(g.SCells[:i], g.SCells[i+1:]...)
			return true
		}
	}
	return false
}

// Cells returns the primary followed by all SCells.
func (g *Group) Cells() []Ref {
	if g == nil {
		return nil
	}
	out := make([]Ref, 0, 1+len(g.SCells))
	out = append(out, g.Primary)
	out = append(out, g.SCells...)
	return out
}

// Contains reports whether r is the primary or one of the SCells.
func (g *Group) Contains(r Ref) bool {
	if g == nil {
		return false
	}
	if g.Primary == r {
		return true
	}
	for _, s := range g.SCells {
		if s == r {
			return true
		}
	}
	return false
}

// key renders a canonical representation with sorted SCells, so that two
// groups with the same members compare equal regardless of addition
// order.
func (g *Group) key() string {
	if g == nil {
		return "-"
	}
	sc := append([]Ref(nil), g.SCells...)
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].Channel != sc[j].Channel {
			return sc[i].Channel < sc[j].Channel
		}
		return sc[i].PCI < sc[j].PCI
	})
	var b strings.Builder
	b.WriteString(g.RAT.String())
	b.WriteByte(':')
	b.WriteString(g.Primary.String())
	for _, s := range sc {
		b.WriteByte('+')
		b.WriteString(s.String())
	}
	return b.String()
}

// State is the coarse radio-access state the paper's FSMs range over.
type State uint8

// The four radio-access states (Figures 3 and 13).
const (
	StateIdle   State = iota // no active RRC connection
	State5GSA                // 5G master (optionally 4G secondary)
	State5GNSA               // 4G master + 5G secondary
	State4GOnly              // 4G without any 5G resource
)

// String names the state the way the paper labels FSM nodes.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "IDLE"
	case State5GSA:
		return "5G SA"
	case State5GNSA:
		return "5G NSA"
	case State4GOnly:
		return "4G only"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Set is a serving cell set (CS): the MCG plus an optional SCG. The
// zero value (nil groups) is IDLE.
type Set struct {
	MCG *Group
	SCG *Group
}

// Idle returns the IDLE serving cell set.
func Idle() Set { return Set{} }

// Clone returns a deep copy of s.
func (s Set) Clone() Set { return Set{MCG: s.MCG.Clone(), SCG: s.SCG.Clone()} }

// IsIdle reports whether no RRC connection exists.
func (s Set) IsIdle() bool { return s.MCG == nil }

// Uses5G implements the paper's 5G ON definition (§2): true as long as
// any 5G cell serves either as master or secondary radio access.
func (s Set) Uses5G() bool {
	if s.MCG != nil && s.MCG.RAT == band.RATNR {
		return true
	}
	if s.SCG != nil && s.SCG.RAT == band.RATNR {
		return true
	}
	return false
}

// State classifies the set into the paper's four FSM states.
func (s Set) State() State {
	switch {
	case s.MCG == nil:
		return StateIdle
	case s.MCG.RAT == band.RATNR:
		return State5GSA
	case s.SCG != nil && s.SCG.RAT == band.RATNR:
		return State5GNSA
	default:
		return State4GOnly
	}
}

// Cells returns all serving cells, MCG first.
func (s Set) Cells() []Ref { return append(s.MCG.Cells(), s.SCG.Cells()...) }

// Contains reports whether r serves in either group.
func (s Set) Contains(r Ref) bool { return s.MCG.Contains(r) || s.SCG.Contains(r) }

// Key returns a canonical string identifying the set's membership; two
// sets with the same cells in the same roles share a Key. Loop detection
// compares CS sequences by Key.
func (s Set) Key() string { return s.MCG.key() + "|" + s.SCG.key() }

// String renders a readable summary such as
// "5G SA {PCell 393@521310 +3 SCells}".
func (s Set) String() string {
	if s.IsIdle() {
		return "IDLE"
	}
	var b strings.Builder
	b.WriteString(s.State().String())
	b.WriteString(" {PCell ")
	b.WriteString(s.MCG.Primary.String())
	if n := len(s.MCG.SCells); n > 0 {
		fmt.Fprintf(&b, " +%d SCells", n)
	}
	if s.SCG != nil {
		fmt.Fprintf(&b, "; PSCell %s", s.SCG.Primary)
		if n := len(s.SCG.SCells); n > 0 {
			fmt.Fprintf(&b, " +%d SCells", n)
		}
	}
	b.WriteString("}")
	return b.String()
}

// Equal reports whether two sets have identical membership and roles.
func (s Set) Equal(o Set) bool { return s.Key() == o.Key() }

package cell

// NR Cell Identity handling (TS 38.413): the 36-bit NCI concatenates a
// gNB identifier with a cell identifier; prefixed with the PLMN it
// forms the NR Cell Global Identity that NSG prints as a long decimal
// ("NR Cell Global ID = 85575131757084985" in the paper's Appendix B).
// The analysis keys on PCI@channel, but the capture format carries the
// CGI for fidelity, and a CGI of 0 marks a cell that is seen but not
// used (Fig. 24).

// NCI is a 36-bit NR Cell Identity: 24 bits of gNB ID and 12 bits of
// cell ID (one of several 3GPP-permitted splits).
type NCI uint64

// nciBits is the total NCI width per TS 38.413.
const (
	nciBits    = 36
	cellIDBits = 12
)

// MakeNCI packs a gNB identifier and a local cell identifier.
func MakeNCI(gnbID uint32, cellID uint16) NCI {
	return NCI(uint64(gnbID&0xffffff)<<cellIDBits | uint64(cellID&0xfff))
}

// GNB returns the 24-bit gNB identifier.
func (n NCI) GNB() uint32 { return uint32(n>>cellIDBits) & 0xffffff }

// CellID returns the 12-bit local cell identifier.
func (n NCI) CellID() uint16 { return uint16(n & 0xfff) }

// PLMNTMobileUS is the packed MCC-MNC of the study's SA operator
// (310-260), used when synthesizing CGIs.
const PLMNTMobileUS uint32 = 310260

// CGI combines a packed PLMN with an NCI into the single decimal value
// the capture format prints.
func CGI(plmn uint32, nci NCI) uint64 {
	return uint64(plmn)<<nciBits | uint64(nci)
}

// SplitCGI inverts CGI.
func SplitCGI(cgi uint64) (plmn uint32, nci NCI) {
	return uint32(cgi >> nciBits), NCI(cgi & (1<<nciBits - 1))
}

// DeriveNCI synthesizes a stable, plausible NCI for a deployed cell:
// the gNB identifier folds the channel (cells of one tower share the
// site-level bits in real deployments; here the channel and PCI group
// stand in), the cell identifier is the PCI.
func DeriveNCI(r Ref) NCI {
	h := uint32(r.Channel)*2654435761 + uint32(r.PCI)*40503
	return MakeNCI(h&0xffffff, uint16(r.PCI))
}

// DeriveCGI synthesizes the full printed CGI for a deployed NR cell.
func DeriveCGI(r Ref) uint64 { return CGI(PLMNTMobileUS, DeriveNCI(r)) }

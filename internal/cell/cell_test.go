package cell

import (
	"testing"
	"testing/quick"

	"github.com/mssn/loopscope/internal/band"
)

func TestRefString(t *testing.T) {
	r := Ref{PCI: 393, Channel: 521310}
	if r.String() != "393@521310" {
		t.Errorf("String = %q", r)
	}
}

func TestParseRef(t *testing.T) {
	r, err := ParseRef("273@387410")
	if err != nil {
		t.Fatal(err)
	}
	if r != (Ref{273, 387410}) {
		t.Errorf("ParseRef = %v", r)
	}
	for _, bad := range []string{"", "@", "273", "273@", "@387410", "x@1", "1@y"} {
		if _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) should fail", bad)
		}
	}
}

// TestRefRoundTrip property: String/ParseRef round-trip.
func TestRefRoundTrip(t *testing.T) {
	f := func(pci uint16, ch uint32) bool {
		r := Ref{PCI: int(pci), Channel: int(ch % 3279166)}
		got, err := ParseRef(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustRefPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRef should panic on malformed input")
		}
	}()
	MustRef("bogus")
}

func TestCellDerived(t *testing.T) {
	c := &Cell{Ref: MustRef("393@521310"), RAT: band.RATNR}
	if c.Band() != "n41" {
		t.Errorf("Band = %q", c.Band())
	}
	if w := c.WidthMHz(); w != 90 {
		t.Errorf("Width = %v", w)
	}
	if f := c.FreqMHz(); f < 2606 || f > 2608 {
		t.Errorf("Freq = %v", f)
	}
	if !c.Is5G() {
		t.Error("Is5G")
	}
	lte := &Cell{Ref: MustRef("380@5815"), RAT: band.RATLTE}
	if lte.Band() != "17" || lte.Is5G() {
		t.Errorf("LTE cell: band=%q is5G=%v", lte.Band(), lte.Is5G())
	}
}

func TestGroupMembership(t *testing.T) {
	g := NewGroup(band.RATNR, MustRef("393@521310"))
	if !g.AddSCell(MustRef("273@387410")) {
		t.Error("first add should succeed")
	}
	if g.AddSCell(MustRef("273@387410")) {
		t.Error("duplicate add should be a no-op")
	}
	if g.AddSCell(g.Primary) {
		t.Error("adding the primary as SCell should be rejected")
	}
	if !g.Contains(MustRef("273@387410")) || !g.Contains(g.Primary) {
		t.Error("Contains failed")
	}
	if got := len(g.Cells()); got != 2 {
		t.Errorf("Cells len = %d", got)
	}
	if !g.RemoveSCell(MustRef("273@387410")) {
		t.Error("remove should succeed")
	}
	if g.RemoveSCell(MustRef("273@387410")) {
		t.Error("second remove should fail")
	}
}

func TestGroupClone(t *testing.T) {
	g := NewGroup(band.RATNR, MustRef("393@521310"))
	g.AddSCell(MustRef("273@387410"))
	cp := g.Clone()
	cp.AddSCell(MustRef("273@398410"))
	if len(g.SCells) != 1 {
		t.Error("Clone aliases SCells")
	}
	var nilg *Group
	if nilg.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestGroupKeyOrderInsensitive(t *testing.T) {
	a := NewGroup(band.RATNR, MustRef("393@521310"))
	a.AddSCell(MustRef("273@387410"))
	a.AddSCell(MustRef("273@398410"))
	b := NewGroup(band.RATNR, MustRef("393@521310"))
	b.AddSCell(MustRef("273@398410"))
	b.AddSCell(MustRef("273@387410"))
	if a.key() != b.key() {
		t.Errorf("keys differ: %q vs %q", a.key(), b.key())
	}
}

func TestSetStates(t *testing.T) {
	idle := Idle()
	if !idle.IsIdle() || idle.State() != StateIdle || idle.Uses5G() {
		t.Errorf("idle set wrong: %v", idle)
	}
	sa := Set{MCG: NewGroup(band.RATNR, MustRef("393@521310"))}
	if sa.State() != State5GSA || !sa.Uses5G() {
		t.Errorf("SA set wrong: %v", sa)
	}
	nsa := Set{
		MCG: NewGroup(band.RATLTE, MustRef("380@5145")),
		SCG: NewGroup(band.RATNR, MustRef("53@632736")),
	}
	if nsa.State() != State5GNSA || !nsa.Uses5G() {
		t.Errorf("NSA set wrong: %v", nsa)
	}
	lteOnly := Set{MCG: NewGroup(band.RATLTE, MustRef("380@5815"))}
	if lteOnly.State() != State4GOnly || lteOnly.Uses5G() {
		t.Errorf("4G-only set wrong: %v", lteOnly)
	}
}

func TestSetKeyAndEqual(t *testing.T) {
	a := Set{MCG: NewGroup(band.RATNR, MustRef("393@521310"))}
	a.MCG.AddSCell(MustRef("273@387410"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be Equal")
	}
	b.MCG.AddSCell(MustRef("273@398410"))
	if a.Equal(b) {
		t.Error("differing sets compare Equal")
	}
	if a.Key() == Idle().Key() {
		t.Error("connected and idle share a key")
	}
}

func TestSetCellsAndContains(t *testing.T) {
	s := Set{
		MCG: NewGroup(band.RATLTE, MustRef("380@5145")),
		SCG: NewGroup(band.RATNR, MustRef("53@632736")),
	}
	s.SCG.AddSCell(MustRef("53@658080"))
	if got := len(s.Cells()); got != 3 {
		t.Errorf("Cells = %d", got)
	}
	if !s.Contains(MustRef("53@658080")) || s.Contains(MustRef("1@2")) {
		t.Error("Contains wrong")
	}
}

func TestSetString(t *testing.T) {
	if Idle().String() != "IDLE" {
		t.Errorf("idle String = %q", Idle())
	}
	s := Set{MCG: NewGroup(band.RATNR, MustRef("393@521310"))}
	s.MCG.AddSCell(MustRef("273@387410"))
	s.MCG.AddSCell(MustRef("273@398410"))
	s.MCG.AddSCell(MustRef("393@501390"))
	want := "5G SA {PCell 393@521310 +3 SCells}"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s, want)
	}
	nsa := Set{
		MCG: NewGroup(band.RATLTE, MustRef("380@5145")),
		SCG: NewGroup(band.RATNR, MustRef("53@632736")),
	}
	if got := nsa.String(); got != "5G NSA {PCell 380@5145; PSCell 53@632736}" {
		t.Errorf("NSA String = %q", got)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateIdle: "IDLE", State5GSA: "5G SA", State5GNSA: "5G NSA", State4GOnly: "4G only",
	} {
		if s.String() != want {
			t.Errorf("State %d = %q, want %q", s, s, want)
		}
	}
	if State(99).String() != "State(99)" {
		t.Error("unknown state string")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Set{MCG: NewGroup(band.RATNR, MustRef("393@521310"))}
	cp := s.Clone()
	cp.MCG.AddSCell(MustRef("273@387410"))
	if len(s.MCG.SCells) != 0 {
		t.Error("Clone aliases MCG")
	}
}

func TestNCIPacking(t *testing.T) {
	n := MakeNCI(0xABCDEF, 0x123)
	if n.GNB() != 0xABCDEF || n.CellID() != 0x123 {
		t.Errorf("NCI round trip: gnb=%x cell=%x", n.GNB(), n.CellID())
	}
	// Overflowing inputs are masked to their field widths.
	m := MakeNCI(0xFFFFFFFF, 0xFFFF)
	if m.GNB() != 0xFFFFFF || m.CellID() != 0xFFF {
		t.Errorf("masking: gnb=%x cell=%x", m.GNB(), m.CellID())
	}
}

func TestCGIPacking(t *testing.T) {
	nci := MakeNCI(12345, 678)
	cgi := CGI(PLMNTMobileUS, nci)
	plmn, back := SplitCGI(cgi)
	if plmn != PLMNTMobileUS || back != nci {
		t.Errorf("CGI round trip: plmn=%d nci=%x", plmn, back)
	}
	// The printed value lands in the same magnitude as the appendix's
	// 85575131757084985 (a 17-digit decimal).
	if cgi < 1e16 || cgi > 1e18 {
		t.Errorf("CGI magnitude off: %d", cgi)
	}
}

func TestDeriveCGIStable(t *testing.T) {
	r := MustRef("393@521310")
	if DeriveCGI(r) != DeriveCGI(r) {
		t.Error("derivation must be deterministic")
	}
	if DeriveCGI(r) == DeriveCGI(MustRef("393@501390")) {
		t.Error("different channels must derive different CGIs")
	}
	if DeriveNCI(r).CellID() != 393 {
		t.Errorf("cell ID should carry the PCI: %d", DeriveNCI(r).CellID())
	}
}

package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// StartDebugServer serves the standard Go debug endpoints plus the
// registry snapshot on addr ("host:port"; ":0" picks a free port):
//
//	/debug/pprof/   net/http/pprof profiles
//	/debug/vars     expvar (cmdline, memstats)
//	/metrics        the registry's Snapshot as JSON (404 when reg is nil)
//
// It returns the bound address and a func that shuts the server down.
// The server runs on its own goroutine; it observes, it never blocks
// the pipeline.
func StartDebugServer(addr string, reg *Registry) (bound string, stop func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DefaultDrainTimeout bounds how long a stopping debug server waits
// for in-flight requests (a scrape, a running profile) to finish
// before cutting them off.
const DefaultDrainTimeout = 2 * time.Second

// StartDebugServer serves the standard Go debug endpoints plus the
// registry snapshot on addr ("host:port"; ":0" picks a free port):
//
//	/debug/pprof/   net/http/pprof profiles
//	/debug/vars     expvar (cmdline, memstats)
//	/metrics        the registry's Snapshot as JSON (404 when reg is nil)
//
// It returns the bound address and a func that shuts the server down
// gracefully with DefaultDrainTimeout (see StartDebugServerDrain).
// The server runs on its own goroutine; it observes, it never blocks
// the pipeline.
func StartDebugServer(addr string, reg *Registry) (bound string, stop func() error, err error) {
	return StartDebugServerDrain(addr, reg, DefaultDrainTimeout)
}

// StartDebugServerDrain is StartDebugServer with an explicit drain
// budget: stop first refuses new connections and waits up to drain for
// in-flight requests to complete, then force-closes whatever remains —
// so a stuck profile download can delay shutdown by at most drain. A
// non-positive drain skips the grace period and closes immediately.
func StartDebugServerDrain(addr string, reg *Registry, drain time.Duration) (bound string, stop func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	stop = func() error {
		if drain <= 0 {
			return srv.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain budget exhausted: cut the stragglers loose.
			closeErr := srv.Close()
			if closeErr != nil {
				return closeErr
			}
			return err
		}
		return nil
	}
	return ln.Addr().String(), stop, nil
}

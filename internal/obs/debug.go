package obs

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DefaultDrainTimeout bounds how long a stopping debug server waits
// for in-flight requests (a scrape, a running profile) to finish
// before cutting them off.
const DefaultDrainTimeout = 2 * time.Second

// StartDebugServer serves the standard Go debug endpoints plus the
// registry snapshot on addr ("host:port"; ":0" picks a free port):
//
//	/debug/pprof/   net/http/pprof profiles
//	/debug/vars     expvar (cmdline, memstats)
//	/metrics        the registry's Snapshot as JSON (404 when reg is nil)
//
// It returns the bound address and a func that shuts the server down
// gracefully with DefaultDrainTimeout (see StartDebugServerDrain).
// The server runs on its own goroutine; it observes, it never blocks
// the pipeline.
func StartDebugServer(addr string, reg *Registry) (bound string, stop func() error, err error) {
	return StartDebugServerDrain(addr, reg, DefaultDrainTimeout)
}

// StartDebugServerDrain is StartDebugServer with an explicit drain
// budget: stop first refuses new connections and waits up to drain for
// in-flight requests to complete, then force-closes whatever remains —
// so a stuck profile download can delay shutdown by at most drain. A
// non-positive drain skips the grace period and closes immediately.
//
// stop is idempotent — later calls return the first call's result. It
// returns the shutdown error (if any) joined with the serve loop's
// exit error, so an accept-loop failure that would otherwise vanish on
// a background goroutine surfaces at the single point the caller
// already checks.
func StartDebugServerDrain(addr string, reg *Registry, drain time.Duration) (bound string, stop func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			// Render to a buffer first: once WriteHeader is implied by
			// the first write, a mid-snapshot encoding error could only
			// produce a torn 200 response. Buffering keeps the error
			// reportable as a real 500.
			var buf bytes.Buffer
			if err := reg.WriteJSON(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if _, err := buf.WriteTo(w); err != nil {
				// The scraper hung up mid-response; it is the only party
				// that could have been told, so count it and move on.
				reg.Add("obs.debug.write_errors", 1)
			}
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	var (
		once    sync.Once
		stopErr error
	)
	stop = func() error {
		once.Do(func() {
			if drain <= 0 {
				stopErr = srv.Close()
			} else {
				ctx, cancel := context.WithTimeout(context.Background(), drain)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					// Drain budget exhausted: cut the stragglers loose.
					stopErr = errors.Join(err, srv.Close())
				}
			}
			// Serve returns ErrServerClosed on a clean Shutdown/Close;
			// anything else is a real accept-loop failure.
			if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
				stopErr = errors.Join(stopErr, err)
			}
		})
		return stopErr
	}
	return ln.Addr().String(), stop, nil
}

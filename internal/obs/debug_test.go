package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Add("test.counter", 7)
	bound, stop, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if !strings.Contains(bound, ":") {
		t.Fatalf("bound address %q has no port", bound)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a snapshot: %v\n%s", err, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "test.counter" || snap.Counters[0].Value != 7 {
		t.Errorf("snapshot = %+v", snap.Counters)
	}

	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

// TestDebugServerNoRegistry: without a registry the /metrics route is
// absent but pprof still serves.
func TestDebugServerNoRegistry(t *testing.T) {
	bound, stop, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without a registry = %d, want 404", resp.StatusCode)
	}
}

// TestDebugServerBadAddr: an unbindable address surfaces as an error,
// not a background panic.
func TestDebugServerBadAddr(t *testing.T) {
	if _, _, err := StartDebugServer("256.256.256.256:1", nil); err == nil {
		t.Error("expected an error for an unbindable address")
	}
}

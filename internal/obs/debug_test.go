package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Add("test.counter", 7)
	bound, stop, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if !strings.Contains(bound, ":") {
		t.Fatalf("bound address %q has no port", bound)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a snapshot: %v\n%s", err, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "test.counter" || snap.Counters[0].Value != 7 {
		t.Errorf("snapshot = %+v", snap.Counters)
	}

	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

// TestDebugServerNoRegistry: without a registry the /metrics route is
// absent but pprof still serves.
func TestDebugServerNoRegistry(t *testing.T) {
	bound, stop, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without a registry = %d, want 404", resp.StatusCode)
	}
}

// TestDebugServerBadAddr: an unbindable address surfaces as an error,
// not a background panic.
func TestDebugServerBadAddr(t *testing.T) {
	if _, _, err := StartDebugServer("256.256.256.256:1", nil); err == nil {
		t.Error("expected an error for an unbindable address")
	}
}

// TestDebugServerGracefulStop: with no requests in flight, stop drains
// cleanly, returns nil, and the port is released.
func TestDebugServerGracefulStop(t *testing.T) {
	bound, stop, err := StartDebugServerDrain("127.0.0.1:0", NewRegistry(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Fatal("server still answering after stop")
	}
}

// TestDebugServerDrainBounded: a connection stuck mid-request cannot
// stall shutdown beyond the drain budget — stop force-closes it and
// reports the exhausted deadline.
func TestDebugServerDrainBounded(t *testing.T) {
	const drain = 250 * time.Millisecond
	bound, stop, err := StartDebugServerDrain("127.0.0.1:0", nil, drain)
	if err != nil {
		t.Fatal(err)
	}
	// A partial request pins the connection in the active state: the
	// server has read bytes but no complete request ever arrives.
	conn, err := net.Dial("tcp", bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server observe the bytes
	start := time.Now()
	err = stop()
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stop = %v, want context.DeadlineExceeded (drain exhausted)", err)
	}
	if elapsed > drain+2*time.Second {
		t.Fatalf("stop took %v, far beyond the %v drain budget", elapsed, drain)
	}
	// The straggler was cut loose, not left hanging.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("stuck connection survived the forced close")
	}
}

// TestDebugServerZeroDrainClosesImmediately: a non-positive drain is
// the old hard-close behavior.
func TestDebugServerZeroDrainClosesImmediately(t *testing.T) {
	bound, stop, err := StartDebugServerDrain("127.0.0.1:0", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("immediate stop: %v", err)
	}
	if _, err := http.Get("http://" + bound + "/debug/vars"); err == nil {
		t.Fatal("server still answering after stop")
	}
}

package obs

import "strconv"

// Stage names one phase of the study pipeline, the vocabulary stage
// spans are recorded under. The order follows the data path:
// simulate → inject → parse → extract → detect → analyze.
type Stage uint8

// Pipeline stages.
const (
	// StageSimulate is the run engine emitting the signaling capture.
	StageSimulate Stage = iota
	// StageInject is fault injection corrupting the capture in flight.
	StageInject
	// StageParse is (lenient) parsing of the capture text.
	StageParse
	// StageExtract is folding the parsed log into the CS timeline.
	StageExtract
	// StageDetect is loop detection and classification.
	StageDetect
	// StageAnalyze is run post-processing (measurement counts,
	// throughput series).
	StageAnalyze
)

// String names the stage as used in metric names.
func (s Stage) String() string {
	switch s {
	case StageSimulate:
		return "simulate"
	case StageInject:
		return "inject"
	case StageParse:
		return "parse"
	case StageExtract:
		return "extract"
	case StageDetect:
		return "detect"
	case StageAnalyze:
		return "analyze"
	default:
		return "Stage(" + strconv.Itoa(int(s)) + ")"
	}
}

// Package obs is the study pipeline's observability layer: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms), per-run stage spans, and a snapshot type that
// serializes to stable, timestamp-free JSON (the same philosophy as
// cmd/benchjson — regenerating on identical inputs yields identical
// bytes).
//
// Metrics are pure observation. Collectors never feed back into the
// simulation or the analysis: a study run with a live Registry produces
// byte-identical records, goldens and experiment output to one with a
// nil collector, which campaign's parity test enforces. The packages
// being observed never read the wall clock themselves — spans take
// their time from the Registry's injected clock, so the determinism
// analyzer's scope stays untouched.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is the observation sink the pipeline packages accept. The
// nil interface is the disabled default: call sites guard with
// `c != nil`, so the hot path costs one comparison and zero
// allocations when observability is off. *Registry is the live
// implementation; Nop is an explicit no-op for tests.
type Collector interface {
	// Add increments the named counter by delta.
	Add(name string, delta int64)
	// Set sets the named gauge.
	Set(name string, v int64)
	// Observe records one sample into the named histogram.
	Observe(name string, v float64)
	// StartStage opens a span for one pipeline stage; the returned
	// func closes it, recording the elapsed time as a duration
	// histogram sample ("stage.<name>.seconds").
	StartStage(s Stage) func()
}

// Nop is the explicit no-op Collector.
type Nop struct{}

// Add implements Collector.
func (Nop) Add(string, int64) {}

// Set implements Collector.
func (Nop) Set(string, int64) {}

// Observe implements Collector.
func (Nop) Observe(string, float64) {}

// StartStage implements Collector.
func (Nop) StartStage(Stage) func() { return nopEnd }

var nopEnd = func() {}

// Fixed histogram bucket sets. Buckets are upper bounds; every
// histogram carries one extra overflow bucket (+Inf). Fixed buckets
// keep snapshots comparable across runs and machines.
var (
	// DurationBuckets covers stage spans, in seconds.
	DurationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}
	// SizeBuckets covers byte and event counts.
	SizeBuckets = []float64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	// DefaultBuckets covers small tallies.
	DefaultBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
)

// bucketsFor picks the fixed bucket set from the metric-name suffix:
// ".seconds" measures time, ".bytes" and ".count" measure volume.
func bucketsFor(name string) []float64 {
	switch {
	case strings.HasSuffix(name, ".seconds"):
		return DurationBuckets
	case strings.HasSuffix(name, ".bytes"), strings.HasSuffix(name, ".count"):
		return SizeBuckets
	default:
		return DefaultBuckets
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts samples into fixed buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // immutable after construction; upper bounds, ascending
	counts  []int64   // guarded by: mu — len(bounds)+1; the last is the +Inf overflow
	sum     float64   // guarded by: mu
	samples int64     // guarded by: mu
}

// Observe records one sample.
//
// locks: mu
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Registry is the live Collector: a named set of counters, gauges and
// histograms, safe for concurrent use by the campaign worker pool.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by: mu
	gauges   map[string]*Gauge     // guarded by: mu
	hists    map[string]*Histogram // guarded by: mu

	// now is the span clock, injectable so tests observe deterministic
	// durations and so observed packages never call time.Now themselves.
	now func() time.Time // guarded by: mu
}

// NewRegistry returns an empty registry whose span clock is time.Now.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		now:      time.Now,
	}
}

// SetClock replaces the span clock (tests inject a fake for
// deterministic span histograms).
//
// locks: mu
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Counter returns (creating if needed) the named counter. Hot paths
// can hold the *Counter and skip the map lookup.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, its
// buckets chosen by bucketsFor from the name suffix.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		bounds := bucketsFor(name)
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Add implements Collector.
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Set implements Collector.
func (r *Registry) Set(name string, v int64) { r.Gauge(name).Set(v) }

// Observe implements Collector.
func (r *Registry) Observe(name string, v float64) { r.Histogram(name).Observe(v) }

// StartStage implements Collector: the returned func records the
// elapsed span into "stage.<name>.seconds" and bumps
// "stage.<name>.spans".
//
//loopvet:detsafe span clock is observation-only: stage durations feed metrics, never domain output, and the metrics-parity test proves runs emit byte-identical captures with metrics on or off
func (r *Registry) StartStage(s Stage) func() {
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	t0 := now()
	name := s.String()
	return func() {
		r.Observe("stage."+name+".seconds", now().Sub(t0).Seconds())
		r.Add("stage."+name+".spans", 1)
	}
}

// Snapshot is the stable, timestamp-free serialization of a registry:
// every section is sorted by name, so identical observations yield
// identical bytes.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot; bucket counts are
// cumulative and the last bucket's bound is "+Inf".
type HistogramValue struct {
	Name    string   `json:"name"`
	Samples int64    `json:"samples"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket. Le is the upper bound
// rendered as text ("+Inf" for the overflow bucket) so the JSON stays
// valid without float-infinity special cases.
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot captures the registry's current state.
//
// locks: mu
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hv := HistogramValue{Name: name, Samples: h.samples, Sum: h.sum}
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i]
			hv.Buckets = append(hv.Buckets, Bucket{Le: strconv.FormatFloat(b, 'g', -1, 64), Count: cum})
		}
		cum += h.counts[len(h.bounds)]
		hv.Buckets = append(hv.Buckets, Bucket{Le: "+Inf", Count: cum})
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the registry snapshot as indented JSON. The output
// carries no timestamps; identical observations produce identical
// bytes.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Set("g", 7)
	r.Set("g", 9)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter a = %d, want 5", got)
	}
	if got := r.Gauge("g").Value(); got != 9 {
		t.Errorf("gauge g = %d, want 9", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter n = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	// ".count" suffix selects SizeBuckets (first bound 64).
	r.Observe("events.count", 10)
	r.Observe("events.count", 100)
	r.Observe("events.count", 1e9) // overflow
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	h := s.Histograms[0]
	if h.Samples != 3 {
		t.Errorf("samples = %d, want 3", h.Samples)
	}
	if want := 10 + 100 + 1e9; h.Sum != float64(want) {
		t.Errorf("sum = %v, want %v", h.Sum, want)
	}
	if len(h.Buckets) != len(SizeBuckets)+1 {
		t.Fatalf("buckets = %d, want %d", len(h.Buckets), len(SizeBuckets)+1)
	}
	// Cumulative counts: first bucket (≤64) holds 1, last (+Inf) all 3.
	if h.Buckets[0].Count != 1 {
		t.Errorf("bucket[0] = %d, want 1", h.Buckets[0].Count)
	}
	last := h.Buckets[len(h.Buckets)-1]
	if last.Le != "+Inf" || last.Count != 3 {
		t.Errorf("last bucket = %+v, want {+Inf 3}", last)
	}
	// Cumulative monotonicity.
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Count < h.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative at %d: %+v", i, h.Buckets)
		}
	}
}

func TestBucketsFor(t *testing.T) {
	cases := []struct {
		name string
		want []float64
	}{
		{"stage.parse.seconds", DurationBuckets},
		{"capture.bytes", SizeBuckets},
		{"events.count", SizeBuckets},
		{"retries", DefaultBuckets},
	}
	for _, c := range cases {
		if got := bucketsFor(c.name); &got[0] != &c.want[0] {
			t.Errorf("bucketsFor(%q) picked the wrong set", c.name)
		}
	}
}

func TestStageSpanUsesInjectedClock(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	end := r.StartStage(StageParse)
	now = now.Add(250 * time.Millisecond)
	end()
	s := r.Snapshot()
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "stage.parse.seconds" {
		t.Fatalf("snapshot histograms = %+v, want stage.parse.seconds", s.Histograms)
	}
	if got := s.Histograms[0].Sum; got != 0.25 {
		t.Errorf("span sum = %v, want 0.25", got)
	}
	if got := r.Counter("stage.parse.spans").Value(); got != 1 {
		t.Errorf("span count = %d, want 1", got)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageSimulate: "simulate",
		StageInject:   "inject",
		StageParse:    "parse",
		StageExtract:  "extract",
		StageDetect:   "detect",
		StageAnalyze:  "analyze",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if got := Stage(200).String(); got != "Stage(200)" {
		t.Errorf("out-of-range stage = %q", got)
	}
}

// TestSnapshotStable: identical observation sequences produce
// byte-identical JSON, regardless of registration order.
func TestSnapshotStable(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, n := range order {
			r.Add(n, 1)
		}
		r.Observe("x.seconds", 0.5)
		r.Set("workers", 4)
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "time") {
		t.Errorf("snapshot mentions time: %s", a)
	}
}

// TestNopAllocationFree: the disabled collector costs nothing on the
// hot path.
func TestNopAllocationFree(t *testing.T) {
	n := Nop{}
	allocs := testing.AllocsPerRun(100, func() {
		n.Add("x", 1)
		n.Set("g", 2)
		n.Observe("h", 3)
		n.StartStage(StageParse)()
	})
	if allocs != 0 {
		t.Errorf("Nop allocates %v per op, want 0", allocs)
	}
}

// TestRegistryImplementsCollector pins the interface.
var _ Collector = (*Registry)(nil)
var _ Collector = Nop{}

// Package throughput models the bulk-download data rate of a run from
// its serving-cell-set timeline, reproducing the performance side of
// the study (Fig. 1b, Fig. 11): fast when 5G is ON (scaled by the
// aggregate NR channel width), a 4G floor for the NSA operators when 5G
// is OFF, and zero while IDLE — which is why OPT's loops suspend data
// service entirely (F4).
package throughput

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/mssn/loopscope/internal/band"
	"github.com/mssn/loopscope/internal/cell"
	"github.com/mssn/loopscope/internal/policy"
	"github.com/mssn/loopscope/internal/stats"
	"github.com/mssn/loopscope/internal/trace"
)

// Sample is one download-speed observation.
type Sample struct {
	At   time.Duration
	Mbps float64
}

// refWidthMHz normalizes the width scaling: an OPT 12R bundle
// aggregates about 210 MHz.
const refWidthMHz = 210.0

// rampSeconds is how long TCP takes to refill the pipe after an
// OFF→ON transition.
const rampSeconds = 2

// Generate produces one speed sample per second over the timeline. The
// same timeline and seed always produce the same series.
func Generate(tl *trace.Timeline, op *policy.Operator, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	n := int(tl.Duration / time.Second)
	out := make([]Sample, 0, n)
	stepIdx := 0
	onStreak := 0
	for s := 0; s < n; s++ {
		at := time.Duration(s) * time.Second
		for stepIdx+1 < len(tl.Steps) && tl.Steps[stepIdx+1].At <= at {
			stepIdx++
		}
		set := tl.Steps[stepIdx].Set
		mbps := 0.0
		switch {
		case set.Uses5G():
			onStreak++
			mbps = onSpeed(set, op, rng)
			if onStreak <= rampSeconds {
				mbps *= 0.3 + 0.35*float64(onStreak)
			}
		case set.IsIdle():
			onStreak = 0
			mbps = 0
		default: // 4G only
			onStreak = 0
			mbps = lognorm(op.MedianOffMbps, 0.30, rng)
		}
		out = append(out, Sample{At: at, Mbps: mbps})
	}
	return out
}

// onSpeed is the 5G-ON speed: the operator median scaled sublinearly by
// the aggregate NR width in use (carrier aggregation helps, with
// diminishing returns), with lognormal run-to-run variation.
func onSpeed(set cell.Set, op *policy.Operator, rng *rand.Rand) float64 {
	width := aggregateNRWidth(set)
	factor := math.Pow(width/refWidthMHz, 0.6)
	if op.Mode == policy.ModeNSA {
		// NSA anchors carry signaling on 4G; the NR leg dominates the
		// rate, already captured by the operator median.
		factor = math.Pow(width/60.0, 0.4)
	}
	return lognorm(op.MedianOnMbps*factor, 0.25, rng)
}

// aggregateNRWidth sums the channel widths of all serving NR cells.
func aggregateNRWidth(set cell.Set) float64 {
	var sum float64
	add := func(g *cell.Group) {
		if g == nil || g.RAT != band.RATNR {
			return
		}
		for _, ref := range g.Cells() {
			sum += band.DefaultWidthMHz(band.RATNR, ref.Channel)
		}
	}
	add(set.MCG)
	add(set.SCG)
	if sum <= 0 {
		sum = 20 // no aggregated carriers: assume one 20 MHz LTE channel
	}
	return sum
}

// lognorm draws a lognormal value with the given median and log-σ.
func lognorm(median, sigma float64, rng *rand.Rand) float64 {
	if median <= 0 {
		return 0
	}
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// WindowStats summarizes speeds inside [from, to).
func WindowStats(samples []Sample, from, to time.Duration) []float64 {
	var xs []float64
	for _, s := range samples {
		if s.At >= from && s.At < to {
			xs = append(xs, s.Mbps)
		}
	}
	return xs
}

// CycleSpeed is the per-cycle speed summary of Fig. 11: the median
// download speed during the ON and OFF portions of one loop cycle.
type CycleSpeed struct {
	OnMedian  float64
	OffMedian float64
}

// Loss returns the speed lost when 5G turns off.
func (c CycleSpeed) Loss() float64 { return c.OnMedian - c.OffMedian }

// CycleSpeeds computes per-cycle ON/OFF medians over a timeline given
// the cycle boundaries (start, onDur, total). Cycles without samples in
// a window are skipped.
func CycleSpeeds(samples []Sample, tl *trace.Timeline, cycles []Cycle) []CycleSpeed {
	var out []CycleSpeed
	for _, c := range cycles {
		var on, off []float64
		for _, s := range samples {
			if s.At < c.Start || s.At >= c.Start+c.Total {
				continue
			}
			// Attribute the sample by the 5G state at its time.
			if in5G(tl, s.At) {
				on = append(on, s.Mbps)
			} else {
				off = append(off, s.Mbps)
			}
		}
		if len(on) == 0 || len(off) == 0 {
			continue
		}
		out = append(out, CycleSpeed{
			OnMedian:  stats.Median(on),
			OffMedian: stats.Median(off),
		})
	}
	return out
}

// Cycle is a loop cycle window.
type Cycle struct {
	Start time.Duration
	Total time.Duration
}

// in5G reports the 5G state at an instant: the step in force at `at` is
// the last one starting at or before it. Timeline steps are in
// ascending At order (FromLog re-anchors regressing clocks), so a
// binary search replaces the former full rescan — CycleSpeeds calls
// this once per sample per cycle, which made it
// O(samples × steps × cycles).
func in5G(tl *trace.Timeline, at time.Duration) bool {
	steps := tl.Steps
	i := sort.Search(len(steps), func(j int) bool { return steps[j].At > at }) - 1
	if i < 0 {
		return false // before the first step: no serving set yet
	}
	return steps[i].Set.Uses5G()
}

package throughput

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/mssn/loopscope/internal/policy"
	"github.com/mssn/loopscope/internal/trace"
)

// Workload models the §7 application study: bulk download (the study's
// default), file upload, video streaming and live streaming. All of
// them transfer continuously and keep an RRC connection demanded at all
// times — which is why the paper observes the loops "regardless of the
// application type" — but their achieved rates react differently to the
// ON-OFF sawtooth.
type Workload uint8

// The four applications of §7.
const (
	WorkloadBulkDownload Workload = iota
	WorkloadFileUpload
	WorkloadVideoStream
	WorkloadLiveStream
)

// String names the workload.
func (w Workload) String() string {
	switch w {
	case WorkloadBulkDownload:
		return "bulk-download"
	case WorkloadFileUpload:
		return "file-upload"
	case WorkloadVideoStream:
		return "video-stream"
	case WorkloadLiveStream:
		return "live-stream"
	default:
		return fmt.Sprintf("Workload(%d)", uint8(w))
	}
}

// Workload rate parameters.
const (
	uplinkFraction   = 0.12 // TDD uplink share of the downlink rate
	videoBitrateMbps = 25.0 // 4K adaptive stream ceiling
	liveBitrateMbps  = 8.0  // latency-bound live stream
)

// GenerateWorkload produces the per-second rate series of an
// application running over the run's radio timeline.
func GenerateWorkload(tl *trace.Timeline, op *policy.Operator, seed int64, w Workload) []Sample {
	base := Generate(tl, op, seed)
	if w == WorkloadBulkDownload {
		return base
	}
	rng := rand.New(rand.NewSource(seed ^ int64(w)<<8))
	out := make([]Sample, len(base))
	// Video keeps a playout buffer: short OFF periods drain it before
	// the viewer stalls.
	bufferS := 0.0
	for i, s := range base {
		v := s
		switch w {
		case WorkloadBulkDownload:
			// Bulk download consumes the raw link rate unchanged.
		case WorkloadFileUpload:
			v.Mbps = s.Mbps * uplinkFraction
		case WorkloadVideoStream:
			link := s.Mbps
			if link >= videoBitrateMbps {
				v.Mbps = videoBitrateMbps
				bufferS = math.Min(bufferS+(link-videoBitrateMbps)/videoBitrateMbps, 30)
			} else if bufferS > 1 {
				// Drain the buffer to keep playback at the bitrate.
				bufferS -= (videoBitrateMbps - link) / videoBitrateMbps
				v.Mbps = videoBitrateMbps
			} else {
				v.Mbps = link // rebuffering: playback limited to the link
			}
		case WorkloadLiveStream:
			// No buffer to hide behind: the stream is capped and stalls
			// the moment the link cannot carry it.
			v.Mbps = math.Min(s.Mbps, liveBitrateMbps*(1+0.05*rng.NormFloat64()))
			if v.Mbps < 0 {
				v.Mbps = 0
			}
		}
		out[i] = v
	}
	return out
}

// StallSeconds counts the seconds an application is fully stalled
// (below 5% of its nominal rate) — the user-facing symptom of F4.
func StallSeconds(samples []Sample, w Workload) time.Duration {
	nominal := videoBitrateMbps
	switch w {
	case WorkloadVideoStream:
		// The playout bitrate initialized above is already nominal.
	case WorkloadLiveStream:
		nominal = liveBitrateMbps
	case WorkloadBulkDownload, WorkloadFileUpload:
		nominal = 20 // any meaningful progress
	}
	n := 0
	for _, s := range samples {
		if s.Mbps < nominal*0.05 {
			n++
		}
	}
	return time.Duration(n) * time.Second
}

package throughput

import (
	"math"
	"testing"
	"time"

	"github.com/mssn/loopscope/internal/band"
	"github.com/mssn/loopscope/internal/cell"
	"github.com/mssn/loopscope/internal/policy"
	"github.com/mssn/loopscope/internal/rrc"
	"github.com/mssn/loopscope/internal/sig"
	"github.com/mssn/loopscope/internal/stats"
	"github.com/mssn/loopscope/internal/trace"
)

func ref(s string) cell.Ref { return cell.MustRef(s) }

func at(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// saLoopTimeline builds a timeline that is ON for 20 s, IDLE for 10 s,
// then ON again until 60 s.
func saLoopTimeline() *trace.Timeline {
	l := &sig.Log{}
	l.Append(at(100), rrc.SetupComplete{Rat: band.RATNR, Cell: ref("393@521310")})
	l.Append(at(3000), rrc.Reconfig{Rat: band.RATNR, Serving: ref("393@521310"),
		AddSCells: []rrc.SCellEntry{
			{Index: 1, Cell: ref("273@387410")},
			{Index: 2, Cell: ref("273@398410")},
			{Index: 3, Cell: ref("393@501390")},
		}})
	l.Append(at(3010), rrc.ReconfigComplete{Rat: band.RATNR})
	l.Append(at(20000), rrc.Release{Rat: band.RATNR})
	l.Append(at(30000), rrc.SetupComplete{Rat: band.RATNR, Cell: ref("393@521310")})
	l.Append(at(60000), rrc.MeasReport{Rat: band.RATNR})
	return trace.Extract(l)
}

// nsaTimeline is NSA for 20 s, then 4G-only.
func nsaTimeline() *trace.Timeline {
	l := &sig.Log{}
	sp := ref("53@632736")
	l.Append(at(100), rrc.SetupComplete{Rat: band.RATLTE, Cell: ref("380@5145")})
	l.Append(at(1000), rrc.Reconfig{Rat: band.RATLTE, Serving: ref("380@5145"), SpCell: &sp})
	l.Append(at(1010), rrc.ReconfigComplete{Rat: band.RATLTE})
	l.Append(at(20000), rrc.Reconfig{Rat: band.RATLTE, Serving: ref("380@5145"), SCGRelease: true})
	l.Append(at(20010), rrc.ReconfigComplete{Rat: band.RATLTE})
	l.Append(at(40000), rrc.MeasReport{Rat: band.RATLTE})
	return trace.Extract(l)
}

func TestGenerateShapesSA(t *testing.T) {
	tl := saLoopTimeline()
	op := policy.OPT()
	samples := Generate(tl, op, 1)
	if len(samples) != 60 {
		t.Fatalf("samples = %d, want 60", len(samples))
	}
	var on, idle []float64
	for _, s := range samples {
		switch {
		case s.At >= 5*time.Second && s.At < 19*time.Second:
			on = append(on, s.Mbps)
		case s.At >= 21*time.Second && s.At < 29*time.Second:
			idle = append(idle, s.Mbps)
		}
	}
	if med := stats.Median(on); med < 100 || med > 320 {
		t.Errorf("ON median = %.1f, want around %v", med, op.MedianOnMbps)
	}
	for _, v := range idle {
		if v != 0 {
			t.Fatalf("IDLE speed = %v, want 0 (data suspended)", v)
		}
	}
}

func TestGenerateShapesNSA(t *testing.T) {
	tl := nsaTimeline()
	op := policy.OPA()
	samples := Generate(tl, op, 2)
	var on, lte []float64
	for _, s := range samples {
		if s.At >= 3*time.Second && s.At < 19*time.Second {
			on = append(on, s.Mbps)
		}
		if s.At >= 22*time.Second {
			lte = append(lte, s.Mbps)
		}
	}
	onMed, lteMed := stats.Median(on), stats.Median(lte)
	if onMed <= lteMed {
		t.Errorf("5G ON median (%.1f) must beat the 4G floor (%.1f)", onMed, lteMed)
	}
	if lteMed < 5 {
		t.Errorf("4G floor = %.1f, want a usable fallback (F4)", lteMed)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tl := saLoopTimeline()
	a := Generate(tl, policy.OPT(), 5)
	b := Generate(tl, policy.OPT(), 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce the series")
		}
	}
	c := Generate(tl, policy.OPT(), 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRampAfterRecovery(t *testing.T) {
	tl := saLoopTimeline()
	samples := Generate(tl, policy.OPT(), 3)
	// The first ON second after the 10 s IDLE must be slower than the
	// steady state a few seconds later (TCP refill).
	var first, steady float64
	for _, s := range samples {
		if s.At == 30*time.Second {
			first = s.Mbps
		}
		if s.At == 40*time.Second {
			steady = s.Mbps
		}
	}
	if first >= steady {
		t.Errorf("ramp missing: first ON second %.1f ≥ steady %.1f", first, steady)
	}
}

func TestAggregateWidthScales(t *testing.T) {
	// A single-PCell bundle must be slower than PCell + 3 SCells.
	single := cell.Set{MCG: cell.NewGroup(band.RATNR, ref("393@521310"))}
	full := single.Clone()
	full.MCG.AddSCell(ref("273@387410"))
	full.MCG.AddSCell(ref("273@398410"))
	full.MCG.AddSCell(ref("393@501390"))
	if aggregateNRWidth(single) >= aggregateNRWidth(full) {
		t.Error("aggregate width must grow with SCells")
	}
	idle := cell.Idle()
	if aggregateNRWidth(idle) != 20 {
		t.Errorf("idle fallback width = %v", aggregateNRWidth(idle))
	}
}

func TestWindowStats(t *testing.T) {
	samples := []Sample{{0, 1}, {time.Second, 2}, {2 * time.Second, 3}}
	xs := WindowStats(samples, time.Second, 3*time.Second)
	if len(xs) != 2 || xs[0] != 2 || xs[1] != 3 {
		t.Errorf("WindowStats = %v", xs)
	}
}

func TestCycleSpeeds(t *testing.T) {
	tl := saLoopTimeline()
	samples := Generate(tl, policy.OPT(), 9)
	cycles := []Cycle{{Start: 0, Total: 30 * time.Second}}
	cs := CycleSpeeds(samples, tl, cycles)
	if len(cs) != 1 {
		t.Fatalf("cycle speeds = %d", len(cs))
	}
	if cs[0].OnMedian <= cs[0].OffMedian {
		t.Errorf("ON median %.1f should beat OFF median %.1f", cs[0].OnMedian, cs[0].OffMedian)
	}
	if math.Abs(cs[0].Loss()-(cs[0].OnMedian-cs[0].OffMedian)) > 1e-9 {
		t.Error("Loss mismatch")
	}
	// A window with no OFF samples is skipped.
	empty := CycleSpeeds(samples, tl, []Cycle{{Start: 5 * time.Second, Total: 2 * time.Second}})
	if len(empty) != 0 {
		t.Errorf("expected skip, got %v", empty)
	}
}

// in5GLinear is the replaced linear rescan, kept verbatim as the
// equivalence oracle for the binary-search in5G.
func in5GLinear(tl *trace.Timeline, at time.Duration) bool {
	on := false
	for _, s := range tl.Steps {
		if s.At > at {
			break
		}
		on = s.Set.Uses5G()
	}
	return on
}

// TestIn5GMatchesLinearScan: the sort.Search rewrite must agree with
// the old linear scan at every instant, including exact step boundaries
// and instants outside the observation.
func TestIn5GMatchesLinearScan(t *testing.T) {
	for name, tl := range map[string]*trace.Timeline{
		"sa-loop": saLoopTimeline(),
		"nsa":     nsaTimeline(),
		"empty":   {},
	} {
		// Probe every 100 ms plus the exact step instants and ±1ns around
		// them.
		var probes []time.Duration
		for at := -time.Second; at <= tl.Duration+2*time.Second; at += 100 * time.Millisecond {
			probes = append(probes, at)
		}
		for _, s := range tl.Steps {
			probes = append(probes, s.At-1, s.At, s.At+1)
		}
		for _, p := range probes {
			if got, want := in5G(tl, p), in5GLinear(tl, p); got != want {
				t.Fatalf("%s: in5G(%v) = %v, linear scan says %v", name, p, got, want)
			}
		}
	}
}

// BenchmarkCycleSpeeds exercises the hot path the in5G binary search
// optimizes: every sample of every cycle queries the timeline.
func BenchmarkCycleSpeeds(b *testing.B) {
	tl := saLoopTimeline()
	samples := Generate(tl, policy.OPT(), 9)
	cycles := []Cycle{
		{Start: 0, Total: 30 * time.Second},
		{Start: 30 * time.Second, Total: 30 * time.Second},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := CycleSpeeds(samples, tl, cycles); len(cs) == 0 {
			b.Fatal("no cycle speeds")
		}
	}
}

func TestLognormZeroMedian(t *testing.T) {
	tl := saLoopTimeline()
	// OPT's OFF median is 0: the generator must not emit negatives.
	for _, s := range Generate(tl, policy.OPT(), 11) {
		if s.Mbps < 0 {
			t.Fatalf("negative speed %v", s.Mbps)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	tl := saLoopTimeline()
	op := policy.OPT()
	bulk := GenerateWorkload(tl, op, 3, WorkloadBulkDownload)
	upload := GenerateWorkload(tl, op, 3, WorkloadFileUpload)
	video := GenerateWorkload(tl, op, 3, WorkloadVideoStream)
	live := GenerateWorkload(tl, op, 3, WorkloadLiveStream)
	if len(upload) != len(bulk) || len(video) != len(bulk) || len(live) != len(bulk) {
		t.Fatal("length mismatch across workloads")
	}
	for i := range bulk {
		if upload[i].Mbps > bulk[i].Mbps {
			t.Fatal("uplink cannot exceed downlink")
		}
		if video[i].Mbps > videoBitrateMbps+1e-9 {
			t.Fatalf("video above its bitrate: %v", video[i].Mbps)
		}
		if live[i].Mbps > liveBitrateMbps*1.3 {
			t.Fatalf("live stream far above its bitrate: %v", live[i].Mbps)
		}
	}
	// The video buffer carries playback into the early OFF seconds.
	offStart := 20 // the timeline goes IDLE at 20 s
	if video[offStart+1].Mbps <= bulk[offStart+1].Mbps {
		t.Errorf("video buffer should outlast the raw link: video=%v bulk=%v",
			video[offStart+1].Mbps, bulk[offStart+1].Mbps)
	}
}

func TestWorkloadStallSeconds(t *testing.T) {
	tl := saLoopTimeline() // 10 s IDLE window
	op := policy.OPT()
	live := GenerateWorkload(tl, op, 5, WorkloadLiveStream)
	video := GenerateWorkload(tl, op, 5, WorkloadVideoStream)
	sLive := StallSeconds(live, WorkloadLiveStream)
	sVideo := StallSeconds(video, WorkloadVideoStream)
	if sLive < 5*time.Second {
		t.Errorf("live stream should stall through the OFF window, got %v", sLive)
	}
	if sVideo > sLive {
		t.Errorf("buffered video (%v) should stall no more than live (%v)", sVideo, sLive)
	}
}

func TestWorkloadString(t *testing.T) {
	names := map[Workload]string{
		WorkloadBulkDownload: "bulk-download",
		WorkloadFileUpload:   "file-upload",
		WorkloadVideoStream:  "video-stream",
		WorkloadLiveStream:   "live-stream",
	}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("%d = %q", w, w)
		}
	}
	if Workload(9).String() != "Workload(9)" {
		t.Error("unknown workload string")
	}
}

// Package band implements the 3GPP frequency-raster arithmetic the
// paper relies on to talk about cells: NR-ARFCN ↔ frequency conversion
// per TS 38.104 §5.4.2 (the global frequency raster), EARFCN ↔ frequency
// conversion per TS 36.101 §5.7.3, and the band registries for every NR
// and LTE band observed in the study (Table 3: NR n5/n25/n41/n71/n77 and
// LTE 2/5/12/13/17/30/66, plus the bands appearing in the appendix
// instances).
package band

import "fmt"

// RAT identifies a radio access technology.
type RAT uint8

// The two radio access technologies of the study.
const (
	RATLTE RAT = iota + 1 // 4G E-UTRA
	RATNR                 // 5G New Radio
)

// String returns the colloquial generation name used in the paper.
func (r RAT) String() string {
	switch r {
	case RATLTE:
		return "4G"
	case RATNR:
		return "5G"
	default:
		return fmt.Sprintf("RAT(%d)", uint8(r))
	}
}

// NRFreqMHz converts an NR-ARFCN to its RF reference frequency in MHz
// following the global frequency raster of TS 38.104 §5.4.2.1:
//
//	F_REF = F_REF-Offs + ΔF_Global · (N_REF − N_REF-Offs)
//
// with the three raster ranges (5 kHz, 15 kHz, 60 kHz granularity).
func NRFreqMHz(arfcn int) float64 {
	switch {
	case arfcn < 600000:
		return 0.005 * float64(arfcn)
	case arfcn <= 2016666:
		return 3000 + 0.015*float64(arfcn-600000)
	default:
		return 24250.08 + 0.060*float64(arfcn-2016667)
	}
}

// NRARFCN converts an RF reference frequency in MHz to the nearest
// NR-ARFCN on the global raster. It is the inverse of NRFreqMHz up to
// raster granularity.
func NRARFCN(freqMHz float64) int {
	switch {
	case freqMHz < 3000:
		return int(freqMHz/0.005 + 0.5)
	case freqMHz < 24250.08:
		return 600000 + int((freqMHz-3000)/0.015+0.5)
	default:
		return 2016667 + int((freqMHz-24250.08)/0.060+0.5)
	}
}

// lteBand describes one E-UTRA operating band's downlink raster segment
// (TS 36.101 Table 5.7.3-1).
type lteBand struct {
	Band    int
	FDLLow  float64 // MHz, F_DL_low
	NOffs   int     // N_Offs-DL
	NDLMin  int     // first EARFCN of the band
	NDLMax  int     // last EARFCN of the band
	FDLHigh float64 // MHz, upper edge of the DL band
}

// lteBands lists the downlink rasters for the LTE bands that appear in
// the study's dataset (Table 3) and appendix loop instances.
var lteBands = []lteBand{
	{Band: 2, FDLLow: 1930, NOffs: 600, NDLMin: 600, NDLMax: 1199, FDLHigh: 1990},
	{Band: 4, FDLLow: 2110, NOffs: 1950, NDLMin: 1950, NDLMax: 2399, FDLHigh: 2155},
	{Band: 5, FDLLow: 869, NOffs: 2400, NDLMin: 2400, NDLMax: 2649, FDLHigh: 894},
	{Band: 12, FDLLow: 729, NOffs: 5010, NDLMin: 5010, NDLMax: 5179, FDLHigh: 746},
	{Band: 13, FDLLow: 746, NOffs: 5180, NDLMin: 5180, NDLMax: 5279, FDLHigh: 756},
	{Band: 17, FDLLow: 734, NOffs: 5730, NDLMin: 5730, NDLMax: 5849, FDLHigh: 746},
	{Band: 30, FDLLow: 2350, NOffs: 9770, NDLMin: 9770, NDLMax: 9869, FDLHigh: 2360},
	{Band: 66, FDLLow: 2110, NOffs: 66436, NDLMin: 66436, NDLMax: 67335, FDLHigh: 2200},
}

// LTEFreqMHz converts a downlink EARFCN to its carrier frequency in MHz
// (TS 36.101 §5.7.3: F_DL = F_DL_low + 0.1·(N_DL − N_Offs-DL)). The
// second return value reports whether the EARFCN falls in a known band.
func LTEFreqMHz(earfcn int) (float64, bool) {
	for _, b := range lteBands {
		if earfcn >= b.NDLMin && earfcn <= b.NDLMax {
			return b.FDLLow + 0.1*float64(earfcn-b.NOffs), true
		}
	}
	return 0, false
}

// LTEBand returns the E-UTRA operating band number of a downlink EARFCN,
// or 0 if unknown.
func LTEBand(earfcn int) int {
	for _, b := range lteBands {
		if earfcn >= b.NDLMin && earfcn <= b.NDLMax {
			return b.Band
		}
	}
	return 0
}

// nrBand describes one NR operating band by its downlink frequency range
// (TS 38.104 Table 5.2-1).
type nrBand struct {
	Name    string
	LowMHz  float64
	HighMHz float64
}

// nrBands lists the NR bands observed in the study, ordered so that the
// first match wins for overlapping ranges (n25 ⊂ n2's range etc. — the
// study only uses the names below).
var nrBands = []nrBand{
	{Name: "n71", LowMHz: 617, HighMHz: 652},
	{Name: "n5", LowMHz: 869, HighMHz: 894},
	{Name: "n25", LowMHz: 1930, HighMHz: 1995},
	{Name: "n41", LowMHz: 2496, HighMHz: 2690},
	{Name: "n77", LowMHz: 3300, HighMHz: 4200},
	{Name: "n79", LowMHz: 4400, HighMHz: 5000},
}

// NRBand returns the NR band name ("n41", "n25", ...) of an NR-ARFCN, or
// "" if the frequency is outside every registered band.
func NRBand(arfcn int) string {
	f := NRFreqMHz(arfcn)
	for _, b := range nrBands {
		if f >= b.LowMHz && f <= b.HighMHz {
			return b.Name
		}
	}
	return ""
}

// BandName returns the study's band label for a channel of the given
// RAT: "n41"-style for NR, "2"/"12"-style for LTE, "" when unknown.
func BandName(rat RAT, channel int) string {
	switch rat {
	case RATNR:
		return NRBand(channel)
	case RATLTE:
		if b := LTEBand(channel); b != 0 {
			return fmt.Sprintf("%d", b)
		}
	}
	return ""
}

// FreqMHz returns the carrier frequency of a channel number for the
// given RAT, and whether the channel was recognized.
func FreqMHz(rat RAT, channel int) (float64, bool) {
	switch rat {
	case RATNR:
		return NRFreqMHz(channel), true
	case RATLTE:
		return LTEFreqMHz(channel)
	}
	return 0, false
}

// DefaultWidthMHz returns the channel bandwidth used in the paper for
// channels it reports explicitly (Table 2), and a RAT-typical default
// otherwise. The "improper" n25 channels are 10 MHz; the n41 channels
// are 90/100 MHz wide.
func DefaultWidthMHz(rat RAT, channel int) float64 {
	switch channel {
	case 521310:
		return 90
	case 501390:
		return 100
	case 398410, 387410:
		return 10
	case 126270:
		return 20
	}
	switch rat {
	case RATNR:
		if NRBand(channel) == "n77" {
			return 60
		}
		return 20
	case RATLTE:
		return 10
	}
	return 10
}

package band

import (
	"math"
	"testing"
	"testing/quick"
)

// TestNRFreqPaperChannels checks every 5G channel number quoted in the
// paper against the center frequency the paper reports for it.
func TestNRFreqPaperChannels(t *testing.T) {
	cases := []struct {
		arfcn   int
		wantMHz float64
		tolMHz  float64
		band    string
	}{
		{521310, 2607, 1, "n41"}, // Table 2: 5G1
		{501390, 2507, 1, "n41"}, // Table 2: 5G2
		{398410, 1992, 1, "n25"}, // Table 2: 5G3
		{387410, 1937, 1, "n25"}, // Table 2: 5G4/5G5 — the problematic channel
		{126270, 631.35, 1, "n71"},
		{632736, 3491.04, 1, "n77"}, // OPA SCG (Fig. 30)
		{658080, 3871.20, 1, "n77"},
		{648672, 3730.08, 1, "n77"}, // OPV N2E2 (Fig. 33)
		{653952, 3809.28, 1, "n77"},
		{174770, 873.85, 1, "n5"}, // OPA n5 SCG (Fig. 31)
	}
	for _, c := range cases {
		got := NRFreqMHz(c.arfcn)
		if math.Abs(got-c.wantMHz) > c.tolMHz {
			t.Errorf("NRFreqMHz(%d) = %.2f, want %.2f±%.1f", c.arfcn, got, c.wantMHz, c.tolMHz)
		}
		if b := NRBand(c.arfcn); b != c.band {
			t.Errorf("NRBand(%d) = %q, want %q", c.arfcn, b, c.band)
		}
	}
}

// TestLTEFreqPaperChannels checks the 4G channels quoted in the paper.
func TestLTEFreqPaperChannels(t *testing.T) {
	cases := []struct {
		earfcn  int
		wantMHz float64
		band    int
	}{
		{5815, 742.5, 17}, // OPA's "5G-disabled" channel, paper: ~742 MHz band 17
		{5230, 751, 13},   // OPV's problematic channel, paper: band 13
		{5145, 742.5, 12}, // the redirect target channel
		{850, 1955, 2},
		{1075, 1977.5, 2},
		{2560, 885, 5},
		{9820, 2355, 30},
		{66486, 2115, 66},
		{66586, 2125, 66},
		{66936, 2160, 66},
	}
	for _, c := range cases {
		got, ok := LTEFreqMHz(c.earfcn)
		if !ok {
			t.Errorf("LTEFreqMHz(%d): unknown channel", c.earfcn)
			continue
		}
		if math.Abs(got-c.wantMHz) > 1.5 {
			t.Errorf("LTEFreqMHz(%d) = %.1f, want %.1f", c.earfcn, got, c.wantMHz)
		}
		if b := LTEBand(c.earfcn); b != c.band {
			t.Errorf("LTEBand(%d) = %d, want %d", c.earfcn, b, c.band)
		}
	}
}

// TestNRARFCNRoundTrip verifies NRARFCN inverts NRFreqMHz on the raster.
func TestNRARFCNRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		arfcn := int(n % 3279166)
		return NRARFCN(NRFreqMHz(arfcn)) == arfcn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestNRFreqMonotone property: frequency is nondecreasing in ARFCN.
func TestNRFreqMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int(a%3279166), int(b%3279166)
		if x > y {
			x, y = y, x
		}
		return NRFreqMHz(x) <= NRFreqMHz(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRasterBoundaries checks the seams between the three global-raster
// segments are continuous per TS 38.104.
func TestRasterBoundaries(t *testing.T) {
	if got := NRFreqMHz(600000); got != 3000 {
		t.Errorf("NRFreqMHz(600000) = %v, want 3000", got)
	}
	if got := NRFreqMHz(2016666); math.Abs(got-24249.99) > 0.001 {
		t.Errorf("NRFreqMHz(2016666) = %v, want 24249.99", got)
	}
	if got := NRFreqMHz(2016667); math.Abs(got-24250.08) > 0.001 {
		t.Errorf("NRFreqMHz(2016667) = %v, want 24250.08", got)
	}
}

func TestBandName(t *testing.T) {
	if got := BandName(RATNR, 387410); got != "n25" {
		t.Errorf("BandName(NR, 387410) = %q, want n25", got)
	}
	if got := BandName(RATLTE, 5815); got != "17" {
		t.Errorf("BandName(LTE, 5815) = %q, want 17", got)
	}
	if got := BandName(RATLTE, 999999); got != "" {
		t.Errorf("BandName(LTE, 999999) = %q, want empty", got)
	}
}

func TestDefaultWidth(t *testing.T) {
	cases := []struct {
		rat  RAT
		ch   int
		want float64
	}{
		{RATNR, 521310, 90},
		{RATNR, 501390, 100},
		{RATNR, 387410, 10},
		{RATNR, 398410, 10},
		{RATNR, 632736, 60}, // n77 default
		{RATLTE, 5815, 10},
	}
	for _, c := range cases {
		if got := DefaultWidthMHz(c.rat, c.ch); got != c.want {
			t.Errorf("DefaultWidthMHz(%v, %d) = %v, want %v", c.rat, c.ch, got, c.want)
		}
	}
}

func TestRATString(t *testing.T) {
	if RATNR.String() != "5G" || RATLTE.String() != "4G" {
		t.Errorf("RAT strings wrong: %s %s", RATNR, RATLTE)
	}
	if RAT(9).String() != "RAT(9)" {
		t.Errorf("unknown RAT string: %s", RAT(9))
	}
}

func TestFreqMHzUnknown(t *testing.T) {
	if _, ok := FreqMHz(RATLTE, 400000); ok {
		t.Error("FreqMHz should not recognize EARFCN 400000")
	}
	if _, ok := FreqMHz(RAT(0), 100); ok {
		t.Error("FreqMHz should reject unknown RAT")
	}
}

package policy

import (
	"testing"
	"time"

	"github.com/mssn/loopscope/internal/meas"
)

func TestAllOperators(t *testing.T) {
	ops := All()
	if len(ops) != 3 {
		t.Fatalf("operators = %d", len(ops))
	}
	wantModes := map[string]Mode{"OPT": ModeSA, "OPA": ModeNSA, "OPV": ModeNSA}
	for _, op := range ops {
		if op.Mode != wantModes[op.Name] {
			t.Errorf("%s mode = %v", op.Name, op.Mode)
		}
		if len(op.NRChannels) == 0 || len(op.LTEChannels) == 0 {
			t.Errorf("%s: empty channel inventory", op.Name)
		}
		if op.MedianOnMbps <= op.MedianOffMbps {
			t.Errorf("%s: ON speed must beat OFF speed", op.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("OPT") == nil || ByName("OPA") == nil || ByName("OPV") == nil {
		t.Error("known operators missing")
	}
	if ByName("OPX") != nil {
		t.Error("OPX should not resolve")
	}
}

func TestProblemChannels(t *testing.T) {
	// F14: OPT 387410, OPA 5815, OPV 5230.
	cases := map[string]int{"OPT": 387410, "OPA": 5815, "OPV": 5230}
	for name, want := range cases {
		if got := ByName(name).ProblemChannel(); got != want {
			t.Errorf("%s problem channel = %d, want %d", name, got, want)
		}
	}
	if (&Operator{Name: "??"}).ProblemChannel() != 0 {
		t.Error("unknown operator should have no problem channel")
	}
}

func TestOPTPolicies(t *testing.T) {
	op := OPT()
	// §3: selection threshold −108 dBm; A2 at −156 (never fires); A3
	// with 6 dB offset.
	if op.SelectThreshRSRPDBm != -108 {
		t.Errorf("selection threshold = %v", op.SelectThreshRSRPDBm)
	}
	if op.SCellA2.Threshold != -156 || op.SCellA2.Kind != meas.EventA2 {
		t.Errorf("SCellA2 = %+v", op.SCellA2)
	}
	if op.SCellA3.Offset != 6 || op.SCellA3.Kind != meas.EventA3 {
		t.Errorf("SCellA3 = %+v", op.SCellA3)
	}
	// The problematic channel must be deployed.
	found := false
	for _, ch := range op.NRChannels {
		if ch == 387410 {
			found = true
		}
	}
	if !found {
		t.Error("387410 missing from OPT's inventory")
	}
	// Anchor priorities rank the wide n41 carriers above n71.
	if op.AnchorPriorityDB[521310] <= op.AnchorPriorityDB[501390] {
		t.Error("521310 should outrank 501390")
	}
	if op.AnchorPriorityDB[501390] <= op.AnchorPriorityDB[126270] {
		t.Error("501390 should outrank 126270")
	}
}

func TestOPAPolicies(t *testing.T) {
	op := OPA()
	// F15: 5815 never works with 5G and blindly redirects to 5145.
	if !op.DisabledWith5G[5815] {
		t.Error("5815 must be 5G-disabled")
	}
	if op.BlindRedirect[5815] != 5145 {
		t.Errorf("redirect = %v", op.BlindRedirect[5815])
	}
	if op.DropSCGOnHandoverTo[5815] {
		t.Error("OPA uses the disable policy, not the drop policy")
	}
	if op.SCGRecoveryConfigPeriod.Duration() > 2*time.Second {
		t.Errorf("OPA recovery period = %v, want ~1s", op.SCGRecoveryConfigPeriod)
	}
	if op.HandoverA3.Quantity != meas.QuantityRSRQ {
		t.Error("OPA handover A3 is RSRQ-driven (Fig. 32)")
	}
}

func TestOPVPolicies(t *testing.T) {
	op := OPV()
	// F15: 5230 works with 5G but drops the SCG on every handover onto
	// it; recovery configuration arrives every 30 s.
	if op.DisabledWith5G[5230] {
		t.Error("5230 is allowed to work with 5G")
	}
	if !op.DropSCGOnHandoverTo[5230] {
		t.Error("5230 must drop the SCG on handover")
	}
	if op.SCGRecoveryConfigPeriod.Duration() != 30*time.Second {
		t.Errorf("OPV recovery period = %v, want 30s", op.SCGRecoveryConfigPeriod)
	}
	if len(op.BlindRedirect) != 0 {
		t.Error("OPV has no blind-redirect policy")
	}
	// B1 threshold from the Fig. 33 instance.
	if op.B1.Threshold != -115 {
		t.Errorf("B1 threshold = %v", op.B1.Threshold)
	}
}

func TestModeString(t *testing.T) {
	if ModeSA.String() != "5G SA" || ModeNSA.String() != "5G NSA" {
		t.Error("mode strings")
	}
}

func TestOPALegacy(t *testing.T) {
	op := OPALegacy()
	if op.LegacyA2B1 == nil {
		t.Fatal("legacy thresholds missing")
	}
	// The dead band must be open: Θ_B1 < Θ_A2.
	if op.LegacyA2B1.B1ThreshRSRPDBm >= op.LegacyA2B1.A2ThreshRSRPDBm {
		t.Error("legacy band closed; no oscillation possible")
	}
	if !op.LegacyA2B1.DeadBand(-114) {
		t.Error("-114 dBm should be inside the dead band")
	}
	if op.LegacyA2B1.DeadBand(-105) || op.LegacyA2B1.DeadBand(-125) {
		t.Error("outside values should not be in the dead band")
	}
	// The legacy profile keeps OPA's deployment but renames itself.
	if op.Name == OPA().Name {
		t.Error("legacy profile must be distinguishable")
	}
	if op.ProblemChannel() != 0 {
		t.Error("renamed profile has no F14 problem channel mapping")
	}
	// Today's profiles carry no legacy thresholds (F12).
	for _, cur := range All() {
		if cur.LegacyA2B1 != nil {
			t.Errorf("%s still carries legacy thresholds", cur.Name)
		}
	}
}

// Package policy encodes the per-operator RRC policies and
// configuration the paper reverse-engineers in §5: measurement-event
// thresholds, cell-selection criteria, and — crucially — the
// channel-specific rules behind the loops (F14/F15): OPA's "5G-disabled"
// channel 5815 with its blind redirect to 5145, OPV's channel 5230 that
// drops the SCG on every handover onto it, and OPV's 30-second
// SCG-recovery configuration cadence.
package policy

import (
	"time"

	"github.com/mssn/loopscope/internal/meas"
	"github.com/mssn/loopscope/internal/units"
)

// Mode is the operator's 5G deployment option.
type Mode uint8

// Deployment options (§2).
const (
	ModeSA  Mode = iota // 5G standalone (OPT)
	ModeNSA             // 5G non-standalone / EN-DC (OPA, OPV)
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeNSA {
		return "5G NSA"
	}
	return "5G SA"
}

// Operator is one network operator's policy profile.
type Operator struct {
	Name     string // study alias: OPT, OPA, OPV
	FullName string // T-Mobile, AT&T, Verizon
	Mode     Mode

	// NRChannels and LTEChannels are the deployed channel inventories
	// (Table 3 bands; channel numbers as reported in the paper's
	// instances and breakdowns).
	NRChannels  []int
	LTEChannels []int

	// --- 5G SA parameters (OPT) ---

	// SelectThreshRSRPDBm is the SIB cell-selection threshold (−108 dBm
	// in the §3 example).
	SelectThreshRSRPDBm units.DBm
	// SCellA2 is the serving-SCell release event configuration
	// ("A2 RSRP < −156 dBm" in the instances — set so low it never
	// fires, which is itself part of the S1E2 story).
	SCellA2 meas.EventConfig
	// SCellA3 triggers SCell modification when a co-channel candidate
	// is offset stronger ("A3 RSRP gap > 6 dB").
	SCellA3 meas.EventConfig

	// --- 5G NSA parameters (OPA, OPV) ---

	// B1 arms NR SCG addition (e.g. RSRP > −115 dBm, Fig. 33).
	B1 meas.EventConfig
	// HandoverA3 governs LTE PCell handover (RSRQ offset 6 dB on the
	// problematic channels, Fig. 32).
	HandoverA3 meas.EventConfig
	// PSCellA3 triggers NR PSCell change within the SCG (Fig. 33:
	// "A3 on 648672: RSRP offset > 5 dB").
	PSCellA3 meas.EventConfig

	// DisabledWith5G marks 4G channels whose PCells never get an SCG
	// (OPA's 5815, F15 policy 1).
	DisabledWith5G map[int]bool
	// BlindRedirect maps a 4G channel to the channel the PCell
	// immediately switches to (same PCI, no measurement) as soon as any
	// NR measurement is reported (OPA: 5815 → 5145, F15 policy 2).
	BlindRedirect map[int]int
	// DropSCGOnHandoverTo marks 4G channels that may carry an SCG but
	// release it on every handover onto them (OPV's 5230).
	DropSCGOnHandoverTo map[int]bool
	// SCGRecoveryConfigPeriod is how often the network pushes the
	// updated measurement configuration a UE needs before it can report
	// NR cells after losing the SCG. OPV pushes every 30 s, which is
	// why its N2E2 OFF times cluster at multiples of 30 s (Fig. 19c).
	// Held in the millisecond unit the 3GPP timers are specified in.
	SCGRecoveryConfigPeriod units.Millis

	// LegacyA2B1, when set, reproduces the uncoordinated A2/B1
	// thresholds reported by prior work (Zhang et al., F12): NR serving
	// cells are released when RSRP falls below A2ThreshRSRPDBm while
	// candidates are added above the (lower) B1 threshold, creating a
	// dead band in which the SCG oscillates. Today's operators have
	// corrected the thresholds — the field exists for the regression
	// experiment demonstrating exactly that.
	LegacyA2B1 *A2B1Legacy

	// AnchorPriorityDB is the per-channel cell-(re)selection priority
	// bonus (SIB cellReselectionPriority, expressed in dB so it
	// composes with RSRP ranking). It is what keeps a UE re-anchoring
	// on the same PCell run after run — the precondition for a
	// *persistent* loop.
	AnchorPriorityDB map[int]units.DB

	// MedianOnMbps / MedianOffMbps anchor the throughput model
	// (Fig. 11: OPT 186.1, OPA 24.9, OPV 97.5 Mbps when ON; OPT ≈ 0
	// when OFF because it goes IDLE, the NSA operators fall back to 4G).
	MedianOnMbps  float64
	MedianOffMbps float64
}

// ProblemChannel returns the operator's primary "problematic" channel
// (F14: OPT 387410, OPA 5815, OPV 5230).
func (o *Operator) ProblemChannel() int {
	switch o.Name {
	case "OPT":
		return 387410
	case "OPA":
		return 5815
	case "OPV":
		return 5230
	}
	return 0
}

// A2B1Legacy is the inconsistent threshold pair of the historical
// A2-B1 loop (Θ_B1 < Θ_A2 opens the oscillation band).
type A2B1Legacy struct {
	A2ThreshRSRPDBm units.DBm // release serving NR below this
	B1ThreshRSRPDBm units.DBm // add candidate NR above this
}

// DeadBand reports whether a median RSRP falls in the oscillation band.
func (l A2B1Legacy) DeadBand(rsrpDBm units.DBm) bool {
	return rsrpDBm > l.B1ThreshRSRPDBm && rsrpDBm < l.A2ThreshRSRPDBm
}

// OPALegacy is OPA as prior measurement studies (2021–2023) saw it:
// the same deployment with the uncoordinated A2/B1 thresholds that
// produced the historical A2-B1 loops. Comparing it against OPA() is
// the F12 regression.
func OPALegacy() *Operator {
	op := OPA()
	op.Name = "OPA-legacy"
	op.B1 = meas.B1(meas.QuantityRSRP, -118)
	op.LegacyA2B1 = &A2B1Legacy{A2ThreshRSRPDBm: -110, B1ThreshRSRPDBm: -118}
	return op
}

// OPT is the 5G SA operator profile (T-Mobile in the study).
func OPT() *Operator {
	return &Operator{
		Name:                "OPT",
		FullName:            "T-Mobile",
		Mode:                ModeSA,
		NRChannels:          []int{521310, 501390, 398410, 387410, 126270},
		LTEChannels:         []int{850, 66986},
		SelectThreshRSRPDBm: -108,
		SCellA2:             meas.A2(meas.QuantityRSRP, -156),
		SCellA3:             meas.A3(meas.QuantityRSRP, 6),
		AnchorPriorityDB: map[int]units.DB{
			521310: 15, // wide n41 carriers are the preferred anchors
			501390: 6,
			126270: 0,
		},
		MedianOnMbps:  186.1,
		MedianOffMbps: 0, // IDLE while OFF: data service suspended
	}
}

// OPA is the first 5G NSA operator profile (AT&T in the study).
func OPA() *Operator {
	return &Operator{
		Name:        "OPA",
		FullName:    "AT&T",
		Mode:        ModeNSA,
		NRChannels:  []int{632736, 658080, 174770},
		LTEChannels: []int{850, 1150, 2000, 5145, 5815, 9820, 66486, 66936},
		B1:          meas.B1(meas.QuantityRSRP, -115),
		HandoverA3:  meas.A3(meas.QuantityRSRQ, 6),
		PSCellA3:    meas.A3(meas.QuantityRSRP, 5),
		DisabledWith5G: map[int]bool{
			5815: true,
		},
		BlindRedirect: map[int]int{
			5815: 5145,
		},
		AnchorPriorityDB:        map[int]units.DB{5815: 8},
		SCGRecoveryConfigPeriod: units.MillisOf(time.Second),
		MedianOnMbps:            24.9,
		MedianOffMbps:           14,
	}
}

// OPV is the second 5G NSA operator profile (Verizon in the study).
func OPV() *Operator {
	return &Operator{
		Name:        "OPV",
		FullName:    "Verizon",
		Mode:        ModeNSA,
		NRChannels:  []int{648672, 653952},
		LTEChannels: []int{1075, 2560, 5230, 66586, 66836},
		B1:          meas.B1(meas.QuantityRSRP, -115),
		HandoverA3:  meas.A3(meas.QuantityRSRQ, 6),
		PSCellA3:    meas.A3(meas.QuantityRSRP, 5),
		DropSCGOnHandoverTo: map[int]bool{
			5230: true,
		},
		AnchorPriorityDB:        map[int]units.DB{5230: 4},
		SCGRecoveryConfigPeriod: units.MillisOf(30 * time.Second),
		MedianOnMbps:            97.5,
		MedianOffMbps:           45,
	}
}

// All returns the three operator profiles in presentation order.
func All() []*Operator { return []*Operator{OPT(), OPA(), OPV()} }

// ByName returns the operator profile for a study alias, or nil.
func ByName(name string) *Operator {
	for _, o := range All() {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the pipeline stages. Each experiment benchmark
// shares one lazily-built study context per benchmark function: the
// first iteration pays for the dataset, later iterations measure the
// aggregation, which is the quantity that scales with dataset size.
//
// Run them all with:
//
//	go test -bench=. -benchmem
package loopscope_test

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/mssn/loopscope"
	"github.com/mssn/loopscope/internal/campaign"
	"github.com/mssn/loopscope/internal/core"
	"github.com/mssn/loopscope/internal/deploy"
	"github.com/mssn/loopscope/internal/experiments"
	"github.com/mssn/loopscope/internal/faults"
	"github.com/mssn/loopscope/internal/obs"
	"github.com/mssn/loopscope/internal/policy"
	"github.com/mssn/loopscope/internal/sig"
	"github.com/mssn/loopscope/internal/throughput"
	"github.com/mssn/loopscope/internal/trace"
	"github.com/mssn/loopscope/internal/uesim"
	"github.com/mssn/loopscope/internal/units"
)

// benchOpts keeps the shared benchmark dataset at a tractable size
// while exercising every code path of the full study.
func benchOpts() campaign.Options {
	return campaign.Options{Seed: 42, Duration: 2 * time.Minute, RunScale: 0.4}
}

// benchExperiment runs one table/figure generator b.N times over a
// shared context. These build full study datasets, so the CI smoke run
// (-short -benchtime=1x) skips them.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skip("full-study benchmark in -short mode")
	}
	ctx := experiments.NewContext(benchOpts())
	g, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	g.Run(ctx) // warm the shared datasets outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := g.Run(ctx)
		if len(res.Lines) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// One benchmark per paper table and figure (DESIGN.md's experiment
// index).
func BenchmarkFig1b(b *testing.B)  { benchExperiment(b, "fig1b") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }

// --- pipeline micro-benchmarks ---

// benchRunSetup builds a deployment and one looping cluster.
func benchRunSetup(b *testing.B) (op *policy.Operator, dep *deploy.Deployment, cl *deploy.Cluster) {
	b.Helper()
	op = policy.OPT()
	dep = deploy.Build(op, deploy.AreasFor("OPT")[0], 43)
	cl = campaign.FindShowcase(dep)
	if cl == nil {
		cl = dep.Clusters[0]
	}
	return
}

// BenchmarkSimulateRun measures one full 5-minute stationary run.
func BenchmarkSimulateRun(b *testing.B) {
	op, dep, cl := benchRunSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
			Duration: 5 * time.Minute, Seed: int64(i)})
	}
}

// BenchmarkEmitParse measures the signaling-log text round trip.
func BenchmarkEmitParse(b *testing.B) {
	op, dep, cl := benchRunSetup(b)
	res := uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
		Duration: 5 * time.Minute, Seed: 7})
	text := res.Log.String()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sig.Parse(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLog simulates one showcase run for the emit/parse benchmarks.
func benchLog(b *testing.B) *sig.Log {
	b.Helper()
	op, dep, cl := benchRunSetup(b)
	return uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
		Duration: 5 * time.Minute, Seed: 7}).Log
}

// BenchmarkEmit measures event-at-a-time rendering of a full capture.
func BenchmarkEmit(b *testing.B) {
	log := benchLog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStringParse is the pre-streaming pipeline shape: materialize
// the capture text, then re-parse it. The baseline BenchmarkStreamParse
// is measured against.
func BenchmarkStringParse(b *testing.B) {
	log := benchLog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sig.ParseString(log.String()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamParse is the streaming pipeline shape: events flow
// through an Emitter and a pipe into the parser; the capture text is
// never materialized.
func BenchmarkStreamParse(b *testing.B) {
	log := benchLog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		go func() {
			em := sig.NewEmitter(pw)
			for _, ev := range log.Events {
				if em.Emit(ev.At, ev.Msg) != nil {
					break
				}
			}
			pw.CloseWithError(em.Close())
		}()
		if _, err := sig.Parse(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamParseObserved is BenchmarkStreamParse with a live
// metrics registry attached, guarding the observability overhead: the
// collector flushes a handful of counters once per parse, so its B/op
// must stay within a whisker of the unobserved baseline.
func BenchmarkStreamParseObserved(b *testing.B) {
	log := benchLog(b)
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		go func() {
			em := sig.NewEmitter(pw)
			for _, ev := range log.Events {
				if em.Emit(ev.At, ev.Msg) != nil {
					break
				}
			}
			pw.CloseWithError(em.Close())
		}()
		if _, err := sig.ParseObserved(pr, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseReuse measures the pooled parser's steady state: one
// materialized capture parsed back-to-back, so every iteration after
// the first reuses the pooled arena, scratch buffers and interning
// tables. This is the path whose allocs/op the zero-allocation rework
// pins — regressions here mean the pool stopped being reused.
func BenchmarkParseReuse(b *testing.B) {
	log := benchLog(b)
	data := []byte(log.String())
	rd := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		if _, err := sig.Parse(rd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStringCorruptParse: the pre-streaming fault path — emit to a
// string, corrupt the whole string, lenient-reparse.
func BenchmarkStringCorruptParse(b *testing.B) {
	log := benchLog(b)
	rates := faults.Profile(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj := faults.New(int64(i), rates)
		if _, _, err := sig.ParseLenientString(inj.Corrupt(log.String())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamCorruptParse: the streamed fault path campaign.runOnce
// uses — corruption happens in flight between emitter and parser.
func BenchmarkStreamCorruptParse(b *testing.B) {
	log := benchLog(b)
	rates := faults.Profile(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj := faults.New(int64(i), rates)
		pr, pw := io.Pipe()
		go func() {
			em := sig.NewEmitter(pw)
			for _, ev := range log.Events {
				if em.Emit(ev.At, ev.Msg) != nil {
					break
				}
			}
			pw.CloseWithError(em.Close())
		}()
		if _, _, err := sig.ParseLenient(inj.Reader(pr)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtract measures CS-timeline extraction from a parsed log.
func BenchmarkExtract(b *testing.B) {
	op, dep, cl := benchRunSetup(b)
	res := uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
		Duration: 5 * time.Minute, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Extract(res.Log)
	}
}

// BenchmarkDetectClassify measures loop detection plus classification.
func BenchmarkDetectClassify(b *testing.B) {
	op, dep, cl := benchRunSetup(b)
	res := uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
		Duration: 5 * time.Minute, Seed: 7})
	tl := trace.Extract(res.Log)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Analyze(tl)
	}
}

// BenchmarkStreamDetect measures incremental loop detection: every
// timeline step pushed through a fresh stream detector plus the flush
// that finalizes forms — the work `-follow` and the fused campaign
// detect stage add on top of extraction.
func BenchmarkStreamDetect(b *testing.B) {
	op, dep, cl := benchRunSetup(b)
	res := uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
		Duration: 5 * time.Minute, Seed: 7})
	tl := trace.Extract(res.Log)
	want := len(core.DetectAll(tl))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd := core.NewStreamDetector(core.StreamConfig{})
		for _, s := range tl.Steps {
			sd.Push(s)
		}
		if got := len(sd.Flush(tl.Duration)); got != want {
			b.Fatalf("stream found %d loops, batch %d", got, want)
		}
	}
}

// BenchmarkThroughput measures the speed-series generator.
func BenchmarkThroughput(b *testing.B) {
	op, dep, cl := benchRunSetup(b)
	res := uesim.Run(uesim.Config{Op: op, Field: dep.Field, Cluster: cl,
		Duration: 5 * time.Minute, Seed: 7})
	tl := trace.Extract(res.Log)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		throughput.Generate(tl, op, int64(i))
	}
}

// BenchmarkFitModel measures §6 model training on a synthetic set.
func BenchmarkFitModel(b *testing.B) {
	truth := &core.Model{K: 0.6, T: 10, N: 2, Feature: core.FeatureSCellGap}
	var samples []core.Sample
	for i := 0; i < 49; i++ {
		c := core.Combo{PCellGapDB: units.DB(i%14 - 7), SCellGapDB: units.DB(i % 12)}
		samples = append(samples, core.Sample{Combos: []core.Combo{c}, Truth: truth.Predict([]core.Combo{c})})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Fit(samples, core.FeatureSCellGap)
	}
}

// BenchmarkFullStudy measures the entire sparse measurement campaign at
// benchmark scale (all 11 areas, every run analyzed).
func BenchmarkFullStudy(b *testing.B) {
	if testing.Short() {
		b.Skip("full-study benchmark in -short mode")
	}
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(42 + i)
		st := campaign.Run(opts)
		if len(st.Areas) != 11 {
			b.Fatal("study incomplete")
		}
	}
}

// BenchmarkPublicAPI exercises the facade end to end the way a
// downstream user would.
func BenchmarkPublicAPI(b *testing.B) {
	op := loopscope.OperatorByName("OPT")
	dep := loopscope.BuildDeployment(op, loopscope.Areas()[0], 43)
	for i := 0; i < b.N; i++ {
		res := loopscope.SimulateRun(loopscope.RunConfig{
			Op: op, Field: dep.Field, Cluster: dep.Clusters[0],
			Duration: time.Minute, Seed: int64(i)})
		parsed, err := loopscope.ParseLogString(res.Log.String())
		if err != nil {
			b.Fatal(err)
		}
		loopscope.Analyze(loopscope.ExtractTimeline(parsed))
	}
}

// Extension experiments (beyond the paper's figures).
func BenchmarkF12Regression(b *testing.B)      { benchExperiment(b, "f12") }
func BenchmarkWalkExperiment(b *testing.B)     { benchExperiment(b, "walk") }
func BenchmarkAppsExperiment(b *testing.B)     { benchExperiment(b, "apps") }
func BenchmarkMitigationStudy(b *testing.B)    { benchExperiment(b, "mitigation") }
func BenchmarkStickinessAblation(b *testing.B) { benchExperiment(b, "ablation-sticky") }

// Prediction: the §6 pipeline through the public API — build a dense
// spatial training set around a looping location by brute measurement,
// fit the logistic/power model P = Σ uᵢ·pᵢ, and use it to predict the
// loop probability at unseen locations from radio features alone.
package main

import (
	"fmt"
	"math"
	"time"

	"github.com/mssn/loopscope"
	"github.com/mssn/loopscope/internal/units"
)

func main() {
	op := loopscope.OperatorByName("OPT")
	area := loopscope.Areas()[0]
	dep := loopscope.BuildDeployment(op, area, 43)

	// The training site: an S1E3 location (co-channel SCell pair with a
	// small RSRP gap).
	var site *loopscope.Cluster
	for _, cl := range dep.Clusters {
		if cl.Arch.String() == "s1e3" {
			site = cl
			break
		}
	}
	if site == nil {
		fmt.Println("no S1E3 site at this seed")
		return
	}

	// Dense spatial measurement: short stationary runs on a 5×5 grid
	// around the site; the measured loop frequency is the ground truth,
	// and the co-channel pair's median RSRP gap is the model feature.
	pair := site.CellsOnChannel(387410)
	fmt.Println("training on a 5x5 grid around", site.Loc)
	var samples []loopscope.TrainingSample
	const runs = 4
	gi := 0
	for dx := -2; dx <= 2; dx++ {
		for dy := -2; dy <= 2; dy++ {
			gi++
			p := site.Loc.Add(float64(dx)*50, float64(dy)*50)
			loops := 0
			for r := 0; r < runs; r++ {
				res := loopscope.SimulateRun(loopscope.RunConfig{
					Op: op, Field: dep.Field, Cluster: site, Loc: p,
					Duration: 3 * time.Minute, Seed: int64(gi*97 + r),
				})
				a := loopscope.AnalyzeLog(res.Log)
				if _, st := a.Primary(); st == loopscope.S1E3 {
					loops++
				}
			}
			gap := dep.Field.Median(pair[0], p).RSRPDBm.Sub(dep.Field.Median(pair[1], p).RSRPDBm)
			samples = append(samples, loopscope.TrainingSample{
				Combos: []loopscope.Combo{{PCellGapDB: 12, SCellGapDB: gap}},
				Truth:  float64(loops) / runs,
			})
		}
	}

	model := loopscope.FitModel(samples, loopscope.FeatureSCellGap)
	fmt.Println("fitted:", model)
	fmt.Println("\nconditional loop probability by SCell RSRP gap:")
	for gap := units.DB(0); gap <= 12; gap += 2 {
		fmt.Printf("  gap %4.1f dB → p = %.2f\n", gap,
			model.CondLoopProb(loopscope.Combo{SCellGapDB: gap}))
	}

	// Predict at every *other* S1E3/clean location of the area and
	// compare with a few measured runs.
	fmt.Println("\npredicted vs measured at unseen locations:")
	var worst float64
	for i, cl := range dep.Clusters {
		if cl == site || i > 11 {
			continue
		}
		p2 := cl.CellsOnChannel(387410)
		gap := dep.Field.Median(p2[0], cl.Loc).RSRPDBm.Sub(dep.Field.Median(p2[1], cl.Loc).RSRPDBm)
		pred := model.Predict([]loopscope.Combo{{PCellGapDB: 12, SCellGapDB: gap}})
		loops := 0
		for r := 0; r < runs; r++ {
			res := loopscope.SimulateRun(loopscope.RunConfig{
				Op: op, Field: dep.Field, Cluster: cl,
				Duration: 3 * time.Minute, Seed: int64(9000 + i*31 + r),
			})
			if _, st := loopscope.AnalyzeLog(res.Log).Primary(); st == loopscope.S1E3 {
				loops++
			}
		}
		truth := float64(loops) / runs
		worst = math.Max(worst, math.Abs(pred-truth))
		fmt.Printf("  loc %2d (%-11s gap %5.1f dB): predicted %.2f, measured %.2f\n",
			i, cl.Arch, gap, pred, truth)
	}
	fmt.Printf("\nworst absolute error: %.2f (paper: most locations within ±0.25)\n", worst)
}

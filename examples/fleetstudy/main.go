// Fleetstudy: the §4.4 cross-device experiment. Six phone models run at
// the same loop-prone locations on all three operators; loops over 5G
// NSA appear on (almost) every model, while loops over 5G SA are
// device-dependent — the capability profile decides which serving cells
// a model uses, and only bundles containing the problematic n25 SCells
// can loop.
package main

import (
	"fmt"
	"math"
	"time"

	"github.com/mssn/loopscope"
)

func main() {
	const runs = 5
	devices := loopscope.Devices()

	for _, opName := range []string{"OPT", "OPA", "OPV"} {
		op := loopscope.OperatorByName(opName)
		area := loopscope.Areas()[firstAreaOf(opName)]
		dep := loopscope.BuildDeployment(op, area, 43)

		// Choose a location whose archetype loops on the reference
		// phone (the OnePlus 12R of the study); for SA pick the most
		// loop-prone S1E3 site (smallest co-channel gap).
		cluster := dep.Clusters[0]
		bestGap := math.Inf(1)
		for _, cl := range dep.Clusters {
			switch cl.Arch.String() {
			case "s1e3":
				pair := cl.CellsOnChannel(387410)
				if len(pair) < 2 {
					continue
				}
				gap := dep.Field.Median(pair[0], cl.Loc).RSRPDBm.Sub(dep.Field.Median(pair[1], cl.Loc).RSRPDBm).Float()
				if gap < 0 {
					gap = -gap
				}
				if gap < bestGap {
					bestGap, cluster = gap, cl
				}
			case "n2e1":
				if math.IsInf(bestGap, 1) {
					cluster = cl
				}
			}
		}
		fmt.Printf("%s (%s, %s) at %v:\n", op.Name, op.FullName, op.Mode, cluster.Loc)

		for _, dev := range devices {
			loops := 0
			var cellsUsed int
			for r := 0; r < runs; r++ {
				res := loopscope.SimulateRun(loopscope.RunConfig{
					Op: op, Field: dep.Field, Cluster: cluster, Device: dev,
					Duration: 4 * time.Minute, Seed: int64(100*r + len(dev.Name)),
				})
				tl := loopscope.ExtractTimeline(res.Log)
				if loopscope.Analyze(tl).HasLoop() {
					loops++
				}
				for _, s := range tl.Steps {
					if n := len(s.Set.Cells()); n > cellsUsed {
						cellsUsed = n
					}
				}
			}
			fmt.Printf("  %-15s loops in %d/%d runs (max serving cells: %d)\n",
				dev.Name, loops, runs, cellsUsed)
		}
		fmt.Println()
	}
	fmt.Println("F5/F6: NSA loops are device-independent; SA loops need the")
	fmt.Println("problematic 2x2 n25 SCells that only the OnePlus 12R aggregates.")
}

// firstAreaOf indexes the first area of an operator in Areas().
func firstAreaOf(op string) int {
	for i, a := range loopscope.Areas() {
		if a.Operator == op {
			return i
		}
	}
	return 0
}

// Parsetrace: analyze a hand-written NSG-style signaling capture with
// no simulator involved — the use case of applying the library to real
// captures. The embedded log reproduces the appendix's S1E3 walkthrough
// (Figures 24–26) twice, so loop detection has a repetition to find.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/mssn/loopscope"
)

// capture is two ON-OFF cycles of the paper's §3 example in the text
// format the parser accepts: RRC establishment on 393@521310, three
// SCells added, the SCell modification 273@387410 → 371@387410, and the
// modem exception that releases everything.
const capture = `00:00:01.635 NR5G RRC OTA Packet -- BCCH_BCH / MIB
  Physical Cell ID = 393, Freq = 521310
00:00:01.690 NR5G RRC OTA Packet -- BCCH_DL_SCH / SIB1
  Physical Cell ID = 393, Freq = 521310
  selectionThreshRSRP = -108.0
00:00:01.708 NR5G RRC OTA Packet -- UL_CCCH / RRCSetupRequest
  Physical Cell ID = 393, Freq = 521310
00:00:01.827 NR5G RRC OTA Packet -- DL_CCCH / RRCSetup
  Physical Cell ID = 393, Freq = 521310
00:00:01.834 NR5G RRC OTA Packet -- UL_DCCH / RRCSetupComplete
  Physical Cell ID = 393, Freq = 521310
00:00:04.361 NR5G RRC OTA Packet -- DL_DCCH / RRCReconfiguration
  Physical Cell ID = 393, Freq = 521310
  sCellToAddModList {sCellIndex 1, physCellId 273, absoluteFrequencySSB 387410}
  sCellToAddModList {sCellIndex 2, physCellId 273, absoluteFrequencySSB 398410}
  sCellToAddModList {sCellIndex 3, physCellId 393, absoluteFrequencySSB 501390}
  measConfig {A2 RSRP < -156dBm on 387410,398410,521310}
  measConfig {A3 RSRP offset > 6dB on 387410}
00:00:04.376 NR5G RRC OTA Packet -- UL_DCCH / RRCReconfigurationComplete
00:00:05.100 NR5G RRC OTA Packet -- UL_DCCH / MeasurementReport
  measResult {cell 393@521310, role PCell, rsrp -81.0, rsrq -10.5}
  measResult {cell 273@387410, role SCell, rsrp -85.0, rsrq -14.5}
  measResult {cell 273@398410, role SCell, rsrp -82.0, rsrq -10.5}
  measResult {cell 393@501390, role SCell, rsrp -82.0, rsrq -10.5}
  measResult {cell 371@387410, role candidate, rsrp -81.0, rsrq -11.5}
00:00:05.110 NR5G RRC OTA Packet -- DL_DCCH / RRCReconfiguration
  Physical Cell ID = 393, Freq = 521310
  sCellToAddModList {sCellIndex 4, physCellId 371, absoluteFrequencySSB 387410}
  sCellToReleaseList {1}
00:00:05.125 NR5G RRC OTA Packet -- UL_DCCH / RRCReconfigurationComplete
00:00:05.200 SYS -- EXCEPTION
  MM5G State = DEREGISTERED, Substate = NO_CELL_AVAILABLE
00:00:16.100 NR5G RRC OTA Packet -- UL_CCCH / RRCSetupRequest
  Physical Cell ID = 393, Freq = 521310
00:00:16.200 NR5G RRC OTA Packet -- DL_CCCH / RRCSetup
  Physical Cell ID = 393, Freq = 521310
00:00:16.210 NR5G RRC OTA Packet -- UL_DCCH / RRCSetupComplete
  Physical Cell ID = 393, Freq = 521310
00:00:18.800 NR5G RRC OTA Packet -- DL_DCCH / RRCReconfiguration
  Physical Cell ID = 393, Freq = 521310
  sCellToAddModList {sCellIndex 1, physCellId 273, absoluteFrequencySSB 387410}
  sCellToAddModList {sCellIndex 2, physCellId 273, absoluteFrequencySSB 398410}
  sCellToAddModList {sCellIndex 3, physCellId 393, absoluteFrequencySSB 501390}
00:00:18.815 NR5G RRC OTA Packet -- UL_DCCH / RRCReconfigurationComplete
00:00:33.100 NR5G RRC OTA Packet -- DL_DCCH / RRCReconfiguration
  Physical Cell ID = 393, Freq = 521310
  sCellToAddModList {sCellIndex 4, physCellId 371, absoluteFrequencySSB 387410}
  sCellToReleaseList {1}
00:00:33.115 NR5G RRC OTA Packet -- UL_DCCH / RRCReconfigurationComplete
00:00:33.200 SYS -- EXCEPTION
  MM5G State = DEREGISTERED, Substate = NO_CELL_AVAILABLE
00:00:43.900 NR5G RRC OTA Packet -- UL_CCCH / RRCSetupRequest
  Physical Cell ID = 393, Freq = 521310
`

func main() {
	parsed, err := loopscope.ParseLogString(capture)
	if err != nil {
		log.Fatal(err)
	}
	tl := loopscope.ExtractTimeline(parsed)

	fmt.Println("serving cell set sequence (Appendix B extraction):")
	for i, s := range tl.Steps {
		fmt.Printf("  CS%-2d t=%-8v %s\n", i, s.At.Round(time.Millisecond), s.Set)
	}

	analysis := loopscope.Analyze(tl)
	loop, subtype := analysis.Primary()
	if loop == nil {
		fmt.Println("no loop found")
		return
	}
	fmt.Printf("\nloop: %v (%v), cycle length %d, %d repetitions\n",
		subtype, loop.Form, loop.CycleLen, loop.Reps)
	if off, ok := loop.OffTransition(); ok && off.Evidence.PendingMod != nil {
		m := off.Evidence.PendingMod
		fmt.Printf("trigger: SCell modification %s → %s failed (intra-channel: %v)\n",
			m.Released, m.Added, m.IntraChannel())
	}
}

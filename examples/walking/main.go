// Walking: the §7 mobility experiment through the public API. A walker
// crosses a location with a known persistent S1E3 loop; the loop's
// releases cluster where the two co-channel SCells' RSRP surfaces cross
// and vanish once the walker leaves the crossing zone.
package main

import (
	"fmt"
	"time"

	"github.com/mssn/loopscope"
)

func main() {
	op := loopscope.OperatorByName("OPT")
	dep := loopscope.BuildDeployment(op, loopscope.Areas()[0], 43)

	// Find the most loop-prone S1E3 site (smallest co-channel gap).
	var site *loopscope.Cluster
	bestGap := 1e9
	for _, cl := range dep.Clusters {
		if cl.Arch.String() != "s1e3" {
			continue
		}
		pair := cl.CellsOnChannel(387410)
		gap := dep.Field.Median(pair[0], cl.Loc).RSRPDBm.Sub(dep.Field.Median(pair[1], cl.Loc).RSRPDBm).Float()
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			bestGap, site = gap, cl
		}
	}
	if site == nil {
		fmt.Println("no S1E3 site at this seed")
		return
	}
	pair := site.CellsOnChannel(387410)
	fmt.Printf("walking 600m through the S1E3 site at %v (pair gap %.1f dB)\n\n", site.Loc, bestGap)

	// One 10-minute walk at 1 m/s across the site.
	start := site.Loc.Add(-300, 0)
	end := site.Loc.Add(300, 0)
	res := loopscope.SimulateRun(loopscope.RunConfig{
		Op: op, Field: dep.Field, Cluster: site,
		Loc:          start,
		Path:         []loopscope.Point{end},
		WalkSpeedMps: 1.0,
		Duration:     10 * time.Minute,
		Seed:         11,
	})
	tl := loopscope.ExtractTimeline(res.Log)

	// Report each 5G release with the walker's position and the local
	// gap between the two co-channel cells at that moment.
	fmt.Println("5G releases along the walk:")
	releases := 0
	for _, s := range tl.Steps {
		if s.Evidence.Kind.String() == "none" {
			continue
		}
		releases++
		progress := s.At.Seconds() * 1.0 // meters walked
		pos := start.Add(progress, 0)
		gap := dep.Field.Median(pair[0], pos).RSRPDBm.Sub(dep.Field.Median(pair[1], pos).RSRPDBm).Float()
		fmt.Printf("  t=%-8v %+6.0fm from site  local pair gap %5.1f dB  (%s)\n",
			s.At.Round(time.Second), pos.X-site.Loc.X, gap, s.Evidence.Kind)
	}
	if releases == 0 {
		fmt.Println("  none this walk — try another seed")
		return
	}
	fmt.Printf("\n%d releases; they concentrate where the pair gap is small —\n", releases)
	fmt.Println("the paper's spatial-correlation observation (§6/§7).")
}

// Quickstart: simulate one 5-minute measurement run at a location with
// a persistent S1E3 loop (the paper's motivating P16 example), then run
// the full analysis pipeline — parse the emitted signaling log, extract
// the serving-cell-set timeline, detect the ON-OFF loop, classify its
// cause, and model the download-speed impact.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/mssn/loopscope"
)

func main() {
	// 1. Build the SA operator's showcase area deployment and pick an
	// S1E3-prone location.
	op := loopscope.OperatorByName("OPT")
	area := loopscope.Areas()[0] // A1
	dep := loopscope.BuildDeployment(op, area, 43)
	cluster := dep.Clusters[0]
	for _, cl := range dep.Clusters {
		if cl.Arch.String() == "s1e3" {
			cluster = cl
			break
		}
	}
	fmt.Printf("location %v in %s (%s, %s)\n", cluster.Loc, area.ID, op.FullName, op.Mode)

	// 2. Simulate a stationary bulk-download run. The result is an
	// NSG-style signaling log.
	res := loopscope.SimulateRun(loopscope.RunConfig{
		Op: op, Field: dep.Field, Cluster: cluster,
		Duration: loopscope.DefaultRunDuration, Seed: 7,
	})

	// 3. The analysis pipeline never touches simulator internals: it
	// re-parses the textual log, exactly like the real methodology.
	parsed, err := loopscope.ParseLogString(res.Log.String())
	if err != nil {
		log.Fatal(err)
	}
	tl := loopscope.ExtractTimeline(parsed)
	fmt.Printf("captured %d RRC events, %d serving-cell-set changes\n\n", parsed.Len(), len(tl.Steps))

	// 4. Detect and classify.
	analysis := loopscope.Analyze(tl)
	if !analysis.HasLoop() {
		fmt.Println("no loop this run — try another seed")
		return
	}
	loop, subtype := analysis.Primary()
	fmt.Printf("ON-OFF loop detected: type %v (%v), %v\n", subtype, subtype.Type(), loop.Form)
	fmt.Printf("cycle (%d serving cell sets, repeated %d times):\n", loop.CycleLen, loop.Reps)
	for _, key := range loop.CycleKeys() {
		fmt.Println("  ", key)
	}

	// 5. Impact metrics (Fig. 10): cycle and OFF durations.
	var on, off time.Duration
	cycles := loop.Cycles()
	for _, c := range cycles {
		on += c.On
		off += c.Off
	}
	n := time.Duration(len(cycles))
	fmt.Printf("\nper-cycle impact: ON %v, OFF %v (ratio %.0f%%)\n",
		(on / n).Round(100*time.Millisecond), (off / n).Round(100*time.Millisecond),
		100*float64(off)/float64(on+off))

	// 6. Throughput impact (Fig. 1b): speed collapses to zero while the
	// connection is stuck in IDLE.
	speeds := loopscope.GenerateThroughput(tl, op, 8)
	var bar strings.Builder
	for i, s := range speeds {
		if i%5 != 0 {
			continue
		}
		switch {
		case s.Mbps < 1:
			bar.WriteByte('_')
		case s.Mbps < 100:
			bar.WriteByte('o')
		default:
			bar.WriteByte('#')
		}
	}
	fmt.Printf("\ndownload speed over time (#=fast o=slow _=stalled, 5s buckets):\n%s\n", bar.String())
}

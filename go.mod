module github.com/mssn/loopscope

go 1.22
